#include "sim/kernel_engine.hh"

#include <array>

#include "check/invariants.hh"
#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/sim_error.hh"
#include "obs/timeline.hh"
#include "sim/engine_internal.hh"
#include "sim/event_queue.hh"
#include "telemetry/stat_registry.hh"
#include "telemetry/trace.hh"

namespace ladm
{

using engine_detail::SmState;
using engine_detail::WarpState;

KernelEngine::KernelEngine(const SystemConfig &cfg, MemorySystem &mem)
    : cfg_(cfg), mem_(mem)
{
    smNode_.resize(cfg_.totalSms());
    for (SmId s = 0; s < cfg_.totalSms(); ++s)
        smNode_[s] = cfg_.nodeOfSm(s);
    maxShards_ = cfg_.resolvedShards();
    lookahead_ = cfg_.minCrossNodeLatencyCycles();
    if (lookahead_ == 0)
        maxShards_ = 1; // no cross-node latency = no conservative window
    pdesBarrierNs_.assign(static_cast<size_t>(maxShards_), 0);
}

void
KernelEngine::registerStats(telemetry::StatRegistry &reg)
{
    const StatKind acc = StatKind::Counter;
    reg.gauge("engine.kernels",
              [this] { return static_cast<double>(kernelsRun_); }, acc);
    reg.gauge("engine.warp_steps",
              [this] { return static_cast<double>(warpStepsTotal_); },
              acc);
    reg.gauge("engine.sector_accesses",
              [this] {
                  return static_cast<double>(sectorAccessesTotal_);
              },
              acc);
    reg.gauge("engine.tbs_dispatched",
              [this] {
                  return static_cast<double>(tbsDispatchedTotal_);
              },
              acc);
    // Bucket width 8 cycles x 32 buckets spans [0, 256); slower steps
    // (remote fetches, DRAM queueing) land in the overflow bucket.
    stepLatencyHist_ =
        &reg.group("engine").histogram("step_latency", 8, 32);

    // PDES shard counters exist only when the sharded loop can run, so
    // serial runs keep an unchanged stat namespace.
    if (maxShards_ > 1) {
        reg.gauge("engine.pdes.shards",
                  [this] { return static_cast<double>(maxShards_); });
        reg.gauge("engine.pdes.windows",
                  [this] { return static_cast<double>(pdesWindows_); },
                  acc);
        reg.gauge("engine.pdes.deferred_ops",
                  [this] {
                      return static_cast<double>(pdesDeferredOps_);
                  },
                  acc);
        reg.gauge("engine.pdes.late_events",
                  [this] {
                      return static_cast<double>(pdesLateEvents_);
                  },
                  acc);
        for (size_t s = 0; s < pdesBarrierNs_.size(); ++s) {
            reg.gauge("engine.pdes.shard" + std::to_string(s) +
                          ".barrier_wait_ns",
                      [this, s] {
                          return static_cast<double>(pdesBarrierNs_[s]);
                      },
                      acc);
        }
    }
}

KernelRunStats
KernelEngine::run(const LaunchDims &dims, TraceSource &trace,
                  const std::vector<std::vector<TbId>> &node_queues,
                  Cycles start,
                  const std::vector<TraceSource *> &shard_traces)
{
    const int num_nodes = cfg_.numNodes();
    if (static_cast<int>(node_queues.size()) != num_nodes) {
        throw InvariantViolation(
            "scheduler produced " + std::to_string(node_queues.size()) +
            " node queues for " + std::to_string(num_nodes) + " nodes");
    }

    const int warps_per_tb =
        static_cast<int>(ceilDiv(dims.threadsPerTb(), cfg_.warpSize));
    ladm_require(warps_per_tb <= cfg_.warpSlotsPerSm,
                 "threadblock needs ", warps_per_tb,
                 " warps but an SM has only ", cfg_.warpSlotsPerSm,
                 " slots");

    int64_t assigned = 0;
    for (const auto &q : node_queues)
        assigned += static_cast<int64_t>(q.size());
    if (assigned != dims.numTbs()) {
        throw InvariantViolation(
            "scheduler assigned " + std::to_string(assigned) +
            " TBs, launch has " + std::to_string(dims.numTbs()));
    }

    // TB-dispatch conservation (opt-in): every TB of the launch must
    // appear exactly once across the node queues -- a duplicate executes
    // twice and a hole hangs the launch's dependents.
    const bool check_on = check::enabled();
    if (check_on) {
        std::vector<uint8_t> seen(dims.numTbs(), 0);
        std::vector<Diagnostic> diags;
        for (const auto &q : node_queues) {
            for (const TbId tb : q) {
                if (tb < 0 || tb >= dims.numTbs()) {
                    diags.push_back({"scheduler.queue",
                                     "tb " + std::to_string(tb),
                                     "TB id outside [0, " +
                                         std::to_string(dims.numTbs()) +
                                         ")",
                                     "scheduler emitted a bogus id"});
                } else if (seen[tb]++) {
                    diags.push_back({"scheduler.queue",
                                     "tb " + std::to_string(tb),
                                     "TB scheduled more than once",
                                     "it would execute twice"});
                }
            }
        }
        if (diags.size() < 8) {
            for (TbId tb = 0; tb < dims.numTbs(); ++tb) {
                if (!seen[tb]) {
                    diags.push_back({"scheduler.queue",
                                     "tb " + std::to_string(tb),
                                     "TB never scheduled",
                                     "the launch would hang waiting for "
                                     "it"});
                    if (diags.size() >= 8)
                        break;
                }
            }
        }
        if (!diags.empty()) {
            throw InvariantViolation(
                "TB dispatch not a permutation of the launch",
                std::move(diags));
        }
    }

    // Sharded conservative-PDES loop -- only when configured for >1
    // shard AND this run needs none of the serial-only machinery: the
    // invariant suite (watchdog/drain bookkeeping is serial), event
    // tracing (the tracer sink is single-threaded), shard-incompatible
    // memory features (see MemorySystem::shardCompatible()), and a
    // private trace instance per extra shard (warpStep scratch buffers
    // are per-object). Anything short of that runs the bit-exact serial
    // reference below.
    if (maxShards_ > 1 && !check_on && !telemetry::tracer().enabled() &&
        mem_.shardCompatible() &&
        static_cast<int>(shard_traces.size()) + 1 >= maxShards_) {
        return runSharded(dims, trace, shard_traces, node_queues, start);
    }

    KernelRunStats stats;
    stats.startCycle = start;
    stats.endCycle = start;
    stats.tbCount = dims.numTbs();

    // Per-node dispatch cursor and per-TB remaining-warp counts.
    std::vector<size_t> cursor(num_nodes, 0);
    std::vector<int> tb_warps_left(dims.numTbs(), 0);

    std::vector<SmState> sms(cfg_.totalSms());
    for (auto &s : sms)
        s.freeWarpSlots = cfg_.warpSlotsPerSm;

    std::vector<WarpState> warps;
    std::vector<uint32_t> free_warps;
    EventQueue pq(cfg_.engineCalendarQueue ? EventQueue::Mode::Calendar
                                           : EventQueue::Mode::Heap,
                  std::max<Cycles>(cfg_.computeGapCycles, 1));

    auto &tr = telemetry::tracer();
    const bool tracing = tr.enabled();
    // TB dispatch cycles, kept only while tracing (retire closes the span).
    std::vector<Cycles> tb_start;
    if (tracing)
        tb_start.assign(dims.numTbs(), 0);
    // A warp step this much slower than pure compute counts as a stall
    // interval worth showing on the timeline.
    const Cycles stall_floor = cfg_.computeGapCycles + 32;

    auto admit = [&](SmId sm, Cycles now) {
        const NodeId node = smNode_[sm];
        auto &q = node_queues[node];
        SmState &st = sms[sm];
        while (st.residentTbs < cfg_.maxResidentTbsPerSm &&
               st.freeWarpSlots >= warps_per_tb && cursor[node] < q.size()) {
            const TbId tb = q[cursor[node]++];
            if (tracing)
                tb_start[tb] = now;
            ++st.residentTbs;
            st.freeWarpSlots -= warps_per_tb;
            tb_warps_left[tb] = warps_per_tb;
            for (int w = 0; w < warps_per_tb; ++w) {
                uint32_t slot;
                if (!free_warps.empty()) {
                    slot = free_warps.back();
                    free_warps.pop_back();
                } else {
                    slot = static_cast<uint32_t>(warps.size());
                    warps.emplace_back();
                }
                warps[slot] = WarpState{tb, w, sm, 0, {}};
                pq.push(now, slot);
            }
        }
    };

    for (SmId sm = 0; sm < cfg_.totalSms(); ++sm)
        admit(sm, start);

    const int depth = std::clamp(cfg_.warpPipelineDepth, 1, 4);

    // No-progress watchdog (opt-in): a healthy kernel advances simulated
    // time within a bounded number of events (every warp's next wake-up
    // moves forward by at least the compute gap). A trace that never
    // retires combined with a zero gap spins here forever; the watchdog
    // turns that hang into a structured abort with the machine state.
    const uint64_t watchdog_limit = check_on ? check::watchdogLimit() : 0;
    Cycles watchdog_time = start;
    uint64_t watchdog_stuck = 0;

    std::vector<MemAccess> buf;
    while (!pq.empty()) {
        const WarpEvent ev = pq.pop();
        WarpState &w = warps[ev.warp];

        // Timeline sampling: event times are globally monotone, so one
        // compare per event is enough to hit every window boundary.
        if (timeline_)
            timeline_->maybeTick(ev.time);

        if (check_on) {
            if (ev.time > watchdog_time) {
                watchdog_time = ev.time;
                watchdog_stuck = 0;
            } else if (++watchdog_stuck > watchdog_limit) {
                size_t dispatched = 0, queued = 0;
                for (int n = 0; n < num_nodes; ++n) {
                    dispatched += cursor[n];
                    queued += node_queues[n].size();
                }
                throw InvariantViolation(
                    "engine made no progress for " +
                        std::to_string(watchdog_stuck) +
                        " events (hung kernel?)",
                    {{"engine.cycle", std::to_string(ev.time),
                      "simulated time stopped advancing",
                      "raise LADM_CHECK_WATCHDOG if the kernel is "
                      "legitimately this dense"},
                     {"engine.live_warps",
                      std::to_string(warps.size() - free_warps.size()),
                      "warps still in flight at the stuck cycle",
                      "check the trace source's retire condition"},
                     {"engine.tbs_dispatched",
                      std::to_string(dispatched) + " of " +
                          std::to_string(queued),
                      "threadblocks handed to SMs so far",
                      "undispatched TBs are waiting on the stuck "
                      "ones"}});
            }
        }

        buf.clear();
        if (!trace.warpStep(w.tb, w.warpInTb, w.step, buf)) {
            // Warp retired; pipelined steps may still be outstanding, so
            // the warp is done only when the newest completion lands.
            Cycles fin = ev.time;
            for (const Cycles d : w.doneRing)
                fin = std::max(fin, d);
            SmState &st = sms[w.sm];
            ++st.freeWarpSlots;
            free_warps.push_back(ev.warp);
            if (--tb_warps_left[w.tb] == 0) {
                --st.residentTbs;
                if (tracing) {
                    const NodeId node = smNode_[w.sm];
                    tr.complete("tb", "tb" + std::to_string(w.tb),
                                telemetry::kPidNodeBase + node, w.sm,
                                tb_start[w.tb], fin);
                }
                admit(w.sm, fin);
            }
            stats.endCycle = std::max(stats.endCycle, fin);
            continue;
        }

        Cycles done = ev.time;
        for (const auto &a : buf)
            done = std::max(done, mem_.access(ev.time, w.sm, a.addr,
                                              a.write));
        const Cycles step_latency = done - ev.time;
        stats.totalStepLatency += step_latency;
        stats.maxStepLatency = std::max(stats.maxStepLatency,
                                        step_latency);
        stats.sectorAccesses += buf.size();
        ++stats.warpSteps;
        // The cumulative gauges advance per step, not per kernel, so a
        // mid-kernel timeline window sees live progress instead of a
        // stale end-of-last-kernel total.
        sectorAccessesTotal_ += buf.size();
        ++warpStepsTotal_;
        if (stepLatencyHist_)
            stepLatencyHist_->sample(step_latency);
        if (tracing && step_latency >= stall_floor && tr.sampleTick()) {
            tr.complete("stall", "warp_stall",
                        telemetry::kPidNodeBase + smNode_[w.sm],
                        w.sm, ev.time, done,
                        "{\"cycles\":" + std::to_string(step_latency) +
                            "}");
        }
        // A warp may run `depth` loop iterations ahead of the oldest
        // outstanding one: the next step issues once the step `depth`
        // iterations back has completed (scoreboard dependence), but no
        // earlier than the compute gap after this issue.
        w.doneRing[w.step % depth] = done;
        const Cycles dep = w.doneRing[(w.step + 1) % depth];
        ++w.step;
        const Cycles next = std::max(ev.time + cfg_.computeGapCycles,
                                     dep + cfg_.computeGapCycles);
        pq.push(next, ev.warp);
    }

    stats.warpInstrs =
        static_cast<double>(stats.warpSteps) * trace.instrsPerStep();

    if (check_on) {
        // Dispatch conservation at drain: every queue fully consumed and
        // every TB's warps retired. A shortfall means admit() starved --
        // a resident-limit accounting bug, not a workload property.
        std::vector<Diagnostic> diags;
        for (int n = 0; n < num_nodes; ++n) {
            if (cursor[n] != node_queues[n].size()) {
                diags.push_back(
                    {"node" + std::to_string(n) + ".queue",
                     std::to_string(cursor[n]) + " of " +
                         std::to_string(node_queues[n].size()) +
                         " dispatched",
                     "TB queue not drained at kernel end",
                     "an SM stopped pulling work while TBs remained"});
            }
        }
        for (TbId tb = 0; tb < dims.numTbs() && diags.size() < 8; ++tb) {
            if (tb_warps_left[tb] != 0) {
                diags.push_back(
                    {"tb" + std::to_string(tb),
                     std::to_string(tb_warps_left[tb]) + " warps left",
                     "threadblock never fully retired",
                     "warp retirement accounting leaked"});
            }
        }
        if (!diags.empty()) {
            throw InvariantViolation(
                "kernel ended with undispatched or unretired "
                "threadblocks",
                std::move(diags));
        }
        mem_.checkDrained(stats.endCycle);
    }

    ++kernelsRun_;
    tbsDispatchedTotal_ += static_cast<uint64_t>(stats.tbCount);
    return stats;
}

} // namespace ladm
