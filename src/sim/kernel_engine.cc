#include "sim/kernel_engine.hh"

#include <array>
#include <queue>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace ladm
{

namespace
{

struct WarpState
{
    TbId tb = 0;
    int warpInTb = 0;
    SmId sm = 0;
    int64_t step = 0;
    /** Completion times of the last in-flight steps (pipeline window). */
    std::array<Cycles, 4> doneRing{};
};

struct SmState
{
    int residentTbs = 0;
    int freeWarpSlots = 0;
};

/** Min-heap entry: next action time of a warp slot. */
struct Event
{
    Cycles time;
    uint32_t warp;

    bool operator>(const Event &o) const { return time > o.time; }
};

} // namespace

KernelEngine::KernelEngine(const SystemConfig &cfg, MemorySystem &mem)
    : cfg_(cfg), mem_(mem)
{
}

KernelRunStats
KernelEngine::run(const LaunchDims &dims, TraceSource &trace,
                  const std::vector<std::vector<TbId>> &node_queues,
                  Cycles start)
{
    const int num_nodes = cfg_.numNodes();
    ladm_assert(static_cast<int>(node_queues.size()) == num_nodes,
                "scheduler produced ", node_queues.size(),
                " node queues for ", num_nodes, " nodes");

    const int warps_per_tb =
        static_cast<int>(ceilDiv(dims.threadsPerTb(), cfg_.warpSize));
    if (warps_per_tb > cfg_.warpSlotsPerSm) {
        ladm_fatal("threadblock needs ", warps_per_tb,
                   " warps but an SM has only ", cfg_.warpSlotsPerSm,
                   " slots");
    }

    int64_t assigned = 0;
    for (const auto &q : node_queues)
        assigned += static_cast<int64_t>(q.size());
    ladm_assert(assigned == dims.numTbs(), "scheduler assigned ", assigned,
                " TBs, launch has ", dims.numTbs());

    KernelRunStats stats;
    stats.startCycle = start;
    stats.endCycle = start;
    stats.tbCount = dims.numTbs();

    // Per-node dispatch cursor and per-TB remaining-warp counts.
    std::vector<size_t> cursor(num_nodes, 0);
    std::vector<int> tb_warps_left(dims.numTbs(), 0);

    std::vector<SmState> sms(cfg_.totalSms());
    for (auto &s : sms)
        s.freeWarpSlots = cfg_.warpSlotsPerSm;

    std::vector<WarpState> warps;
    std::vector<uint32_t> free_warps;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> pq;

    auto admit = [&](SmId sm, Cycles now) {
        const NodeId node = cfg_.nodeOfSm(sm);
        auto &q = node_queues[node];
        SmState &st = sms[sm];
        while (st.residentTbs < cfg_.maxResidentTbsPerSm &&
               st.freeWarpSlots >= warps_per_tb && cursor[node] < q.size()) {
            const TbId tb = q[cursor[node]++];
            ++st.residentTbs;
            st.freeWarpSlots -= warps_per_tb;
            tb_warps_left[tb] = warps_per_tb;
            for (int w = 0; w < warps_per_tb; ++w) {
                uint32_t slot;
                if (!free_warps.empty()) {
                    slot = free_warps.back();
                    free_warps.pop_back();
                } else {
                    slot = static_cast<uint32_t>(warps.size());
                    warps.emplace_back();
                }
                warps[slot] = WarpState{tb, w, sm, 0, {}};
                pq.push(Event{now, slot});
            }
        }
    };

    for (SmId sm = 0; sm < cfg_.totalSms(); ++sm)
        admit(sm, start);

    const int depth = std::clamp(cfg_.warpPipelineDepth, 1, 4);

    std::vector<MemAccess> buf;
    while (!pq.empty()) {
        const Event ev = pq.top();
        pq.pop();
        WarpState &w = warps[ev.warp];

        buf.clear();
        if (!trace.warpStep(w.tb, w.warpInTb, w.step, buf)) {
            // Warp retired; pipelined steps may still be outstanding, so
            // the warp is done only when the newest completion lands.
            Cycles fin = ev.time;
            for (const Cycles d : w.doneRing)
                fin = std::max(fin, d);
            SmState &st = sms[w.sm];
            ++st.freeWarpSlots;
            free_warps.push_back(ev.warp);
            if (--tb_warps_left[w.tb] == 0) {
                --st.residentTbs;
                admit(w.sm, fin);
            }
            stats.endCycle = std::max(stats.endCycle, fin);
            continue;
        }

        Cycles done = ev.time;
        for (const auto &a : buf)
            done = std::max(done, mem_.access(ev.time, w.sm, a.addr,
                                              a.write));
        stats.totalStepLatency += done - ev.time;
        stats.maxStepLatency = std::max(stats.maxStepLatency,
                                        done - ev.time);
        stats.sectorAccesses += buf.size();
        ++stats.warpSteps;
        // A warp may run `depth` loop iterations ahead of the oldest
        // outstanding one: the next step issues once the step `depth`
        // iterations back has completed (scoreboard dependence), but no
        // earlier than the compute gap after this issue.
        w.doneRing[w.step % depth] = done;
        const Cycles dep = w.doneRing[(w.step + 1) % depth];
        ++w.step;
        const Cycles next = std::max(ev.time + cfg_.computeGapCycles,
                                     dep + cfg_.computeGapCycles);
        pq.push(Event{next, ev.warp});
    }

    stats.warpInstrs =
        static_cast<double>(stats.warpSteps) * trace.instrsPerStep();
    return stats;
}

} // namespace ladm
