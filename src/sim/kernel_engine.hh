/**
 * @file
 * KernelEngine: event-driven execution of one kernel launch.
 *
 * The engine walks every threadblock's warps through their trace steps
 * (see sim/trace_source.hh) with the machine's real concurrency limits:
 * warp slots and resident-TB limits per SM, dynamic TB dispatch within a
 * node (an SM pulls the next block from its node's queue as soon as one
 * retires), and memory timing from MemorySystem. The only events are warp
 * wake-ups, kept in a min-heap so shared bandwidth servers observe
 * requests in global time order.
 */

#ifndef LADM_SIM_KERNEL_ENGINE_HH
#define LADM_SIM_KERNEL_ENGINE_HH

#include <vector>

#include "common/types.hh"
#include "config/system_config.hh"
#include "kernel/kernel_desc.hh"
#include "sim/memory_system.hh"
#include "sim/trace_source.hh"

namespace ladm
{

class Histogram;
namespace telemetry
{
class StatRegistry;
}
namespace obs
{
class Timeline;
}
namespace serial
{
class Writer;
class Reader;
} // namespace serial
namespace snapshot
{
class Checkpointer;
}

/** Outcome of one kernel execution. */
struct KernelRunStats
{
    Cycles startCycle = 0;
    Cycles endCycle = 0;
    uint64_t warpSteps = 0;
    uint64_t sectorAccesses = 0;
    double warpInstrs = 0.0;
    int64_t tbCount = 0;
    /** Aggregate warp-step service time (diagnostics). */
    Cycles totalStepLatency = 0;
    Cycles maxStepLatency = 0;

    Cycles cycles() const { return endCycle - startCycle; }
};

class KernelEngine
{
  public:
    KernelEngine(const SystemConfig &cfg, MemorySystem &mem);

    /**
     * Execute a kernel to completion.
     *
     * @param dims         launch geometry
     * @param trace        workload access generator
     * @param node_queues  per-node ordered TB lists from the scheduler;
     *                     must cover every TB exactly once
     * @param start        cycle at which the launch begins
     * @param shard_traces additional trace instances (one per shard
     *                     beyond the first) for the sharded PDES loop;
     *                     each shard thread needs its own instance
     *                     because warpStep() uses per-object scratch
     *                     buffers. With fewer instances than shards the
     *                     engine runs the serial loop (and says so: see
     *                     pdesFallback()).
     * @param resume       restore mid-kernel loop state from the
     *                     attached Checkpointer's kEngine section and
     *                     continue instead of admitting from scratch
     */
    KernelRunStats run(const LaunchDims &dims, TraceSource &trace,
                       const std::vector<std::vector<TbId>> &node_queues,
                       Cycles start,
                       const std::vector<TraceSource *> &shard_traces =
                           {},
                       bool resume = false);

    /**
     * Shard count this engine was configured with (resolved, clamped to
     * the node count). 1 = serial reference loop. Individual runs may
     * still fall back to the serial loop (tracing, invariant checks,
     * shard-incompatible memory features, missing per-shard traces).
     */
    int maxShards() const { return maxShards_; }

    /**
     * Publish cumulative engine counters (kernels, warp steps, sector
     * accesses, TBs dispatched) and the warp-step service-time histogram
     * under "engine" in the registry.
     */
    void registerStats(telemetry::StatRegistry &reg);

    /**
     * Arm the cycle-windowed timeline sampler (null = off). When armed
     * the event loop pays one inline compare per warp event; when not,
     * one untaken branch.
     */
    void attachTimeline(obs::Timeline *t) { timeline_ = t; }

    /**
     * Arm checkpointing (null = off = one untaken null check per event).
     * The engine polls Checkpointer::pending() at its safe points --
     * between events serially, at the window-advance barrier sharded --
     * and also dumps a post-mortem checkpoint when the watchdog fires.
     */
    void attachCheckpointer(snapshot::Checkpointer *c) { ckpt_ = c; }

    /**
     * Why the last run() with maxShards() > 1 used the serial loop
     * instead of the sharded PDES loop (None = it ran sharded). The
     * reason is also published as the "engine.pdes.fallback_reason"
     * gauge and warned once per distinct reason, so a silently-serial
     * run is diagnosable from its telemetry alone.
     */
    enum class PdesFallback : int
    {
        None = 0,
        CheckSuite = 1,         ///< LADM_CHECK invariants force serial
        Tracing = 2,            ///< event tracing is serial-only
        MemoryIncompatible = 3, ///< see MemorySystem::shardIncompatibleReason
        MissingShardTraces = 4, ///< caller supplied too few trace instances
        ZeroLookahead = 5,      ///< config gives a zero conservative window
    };

    PdesFallback pdesFallback() const { return fallback_; }
    /** Human-readable detail of the last fallback ("" when None). */
    const std::string &pdesFallbackDetail() const { return fallbackDetail_; }

  private:
    /** Record + publish a PDES->serial fallback (warns once per reason). */
    void noteFallback(PdesFallback fb, const char *detail);
    /**
     * The sharded conservative-PDES event loop (sim/sharded_engine.cc):
     * one worker thread per shard, warps partitioned by NUMA node,
     * threads synchronized on time windows of `lookahead_` cycles with
     * cross-node memory operations executed in the serial barrier
     * phase. Inputs are pre-validated by run().
     */
    KernelRunStats runSharded(
        const LaunchDims &dims, TraceSource &trace,
        const std::vector<TraceSource *> &shard_traces,
        const std::vector<std::vector<TbId>> &node_queues, Cycles start,
        bool resume);

    /** Cumulative counters shared by both loops (kEngine section). */
    void saveCumulative(serial::Writer &w) const;
    void loadCumulative(serial::Reader &r);

    const SystemConfig &cfg_;
    MemorySystem &mem_;
    obs::Timeline *timeline_ = nullptr;
    snapshot::Checkpointer *ckpt_ = nullptr;
    /** nodeOfSm() hoisted into a table, built once per topology. */
    std::vector<NodeId> smNode_;

    /** Resolved shard count (cfg.shards / LADM_SHARDS, clamped). */
    int maxShards_ = 1;
    /** Conservative window width: min cross-node link latency. */
    Cycles lookahead_ = 0;

    // Cumulative across run() calls; published as Counter-kind gauges so
    // per-kernel deltas recover the per-launch values.
    uint64_t kernelsRun_ = 0;
    uint64_t warpStepsTotal_ = 0;
    uint64_t sectorAccessesTotal_ = 0;
    uint64_t tbsDispatchedTotal_ = 0;

    // PDES shard counters (cumulative; registered when maxShards_ > 1).
    // windows/deferred/late are deterministic functions of the run;
    // barrier-wait is wall-clock observability (per shard, nanoseconds).
    uint64_t pdesWindows_ = 0;
    uint64_t pdesDeferredOps_ = 0;
    uint64_t pdesLateEvents_ = 0;
    std::vector<uint64_t> pdesBarrierNs_;

    /** Lives in the registry's "engine" group; null until registered. */
    Histogram *stepLatencyHist_ = nullptr;

    /** Last run's PDES->serial fallback reason (satellite diagnostic). */
    PdesFallback fallback_ = PdesFallback::None;
    std::string fallbackDetail_;
    /** Bitmask of reasons already warned about (warn once per reason). */
    unsigned fallbackWarned_ = 0;
};

const char *toString(KernelEngine::PdesFallback fb);

} // namespace ladm

#endif // LADM_SIM_KERNEL_ENGINE_HH
