/**
 * @file
 * EventQueue: the kernel engine's pending-warp-event scheduler.
 *
 * Two implementations behind one interface:
 *
 *  - Heap (default): a flat binary min-heap driven by std::push_heap /
 *    std::pop_heap with a time-only comparator -- operation-for-operation
 *    the std::priority_queue the engine historically used, so the pop
 *    order (including the order of EQUAL-time events, which falls out of
 *    the heap structure) is bit-compatible with every recorded result.
 *
 *  - Calendar: a classic calendar queue [Brown 1988] bucketed by the
 *    compute gap. An event lands in bucket (time / width) mod numBuckets;
 *    pop takes the minimum (time, seq) from the cursor's bucket and the
 *    cursor walks bucket-to-bucket as simulated time advances. Events
 *    beyond one calendar year (numBuckets x width cycles ahead) ride in a
 *    sparse-timestamp fallback heap and migrate into buckets when their
 *    year arrives. Push and pop are O(1) amortized while timestamps stay
 *    dense, which warp wake-ups are (the next event of a warp is within a
 *    few compute gaps or one memory latency).
 *
 * Within the calendar, equal-time events pop in insertion (FIFO) order.
 * That is a DIFFERENT tie order than the binary heap's, and tie order is
 * behavior-relevant: simultaneous accesses book bandwidth servers in pop
 * order, so per-warp delays -- and therefore whole-run metrics -- shift
 * with it (measured on fig09: several workloads move by a few percent
 * under a different tie-break). The heap is the default so results stay
 * bit-reproducible against the repo's recorded baselines; the calendar
 * mode is for throughput experiments that accept a different (equally
 * valid) simultaneity order. See docs/performance.md.
 */

#ifndef LADM_SIM_EVENT_QUEUE_HH
#define LADM_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace ladm
{

namespace serial
{
class Writer;
class Reader;
} // namespace serial

/** One pending wake-up: warp slot @p warp acts at cycle @p time. */
struct WarpEvent
{
    Cycles time;
    uint32_t warp;

    bool operator>(const WarpEvent &o) const { return time > o.time; }
};

class EventQueue
{
  public:
    enum class Mode
    {
        Heap,     ///< binary heap, priority_queue-compatible tie order
        Calendar, ///< calendar queue, FIFO tie order
    };

    /**
     * @param mode         scheduling structure (see file comment)
     * @param bucket_width calendar bucket span in cycles; the natural
     *                     choice is the engine's compute gap. Ignored in
     *                     Heap mode.
     */
    explicit EventQueue(Mode mode = Mode::Heap, Cycles bucket_width = 4)
        : mode_(mode), width_(std::max<Cycles>(bucket_width, 1))
    {
        if (mode_ == Mode::Calendar) {
            buckets_.resize(kNumBuckets);
            yearSpan_ = static_cast<Cycles>(kNumBuckets) * width_;
        }
        heap_.reserve(1024);
    }

    Mode mode() const { return mode_; }
    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

    void
    push(Cycles time, uint32_t warp)
    {
        ++size_;
        if (mode_ == Mode::Heap) {
            heap_.push_back(WarpEvent{time, warp});
            std::push_heap(heap_.begin(), heap_.end(),
                           std::greater<WarpEvent>());
            return;
        }
        pushCalendar(Entry{time, seq_++, warp});
    }

    /**
     * Remove and return the earliest event (FIFO among equal times in
     * Calendar mode). Must not be called on an empty queue.
     */
    WarpEvent
    pop()
    {
        --size_;
        if (mode_ == Mode::Heap) {
            std::pop_heap(heap_.begin(), heap_.end(),
                          std::greater<WarpEvent>());
            const WarpEvent ev = heap_.back();
            heap_.pop_back();
            return ev;
        }
        return popCalendar();
    }

    /**
     * Checkpoint the queue's raw arrays (snapshot/component_state.cc).
     * The heap vector and calendar buckets are serialized as-is, never
     * rebuilt by re-pushing: the structural order of EQUAL-time events
     * is behavior-relevant (simultaneous accesses book bandwidth in pop
     * order), so restore must reproduce the exact internal layout.
     */
    void saveState(serial::Writer &w) const;
    void loadState(serial::Reader &r);

  private:
    struct Entry
    {
        Cycles time;
        uint64_t seq; ///< insertion order: FIFO among equal times
        uint32_t warp;

        bool
        operator>(const Entry &o) const
        {
            return time != o.time ? time > o.time : seq > o.seq;
        }
    };

    /**
     * Power of two. 1024 buckets x the 4-cycle default gap = a 4096-cycle
     * year: far wider than one memory round trip, so in steady state
     * nearly every push files directly into a bucket and each bucket
     * holds only the few events of one gap-wide time slice.
     */
    static constexpr size_t kNumBuckets = 1024;

    size_t
    bucketOf(Cycles time) const
    {
        return static_cast<size_t>(time / width_) & (kNumBuckets - 1);
    }

    void
    pushCalendar(const Entry &e)
    {
        if (e.time >= yearStart_ + yearSpan_) {
            // Sparse timestamp: beyond the calendar horizon. Heap
            // fallback; migrates into a bucket when its year starts.
            overflow_.push_back(e);
            std::push_heap(overflow_.begin(), overflow_.end(),
                           std::greater<Entry>());
            return;
        }
        // An event at or before the cursor's slice (possible only for
        // callers scheduling into the past) files under the cursor so it
        // still pops next; takeMin() orders within the bucket.
        const Cycles cursor_start =
            yearStart_ + static_cast<Cycles>(cursor_) * width_;
        const size_t idx =
            e.time < cursor_start ? cursor_ : bucketOf(e.time);
        buckets_[idx].push_back(e);
        ++inYear_;
    }

    /** Remove and return the minimum (time, seq) entry of @p bucket. */
    Entry
    takeMin(std::vector<Entry> &bucket)
    {
        size_t best = 0;
        for (size_t i = 1; i < bucket.size(); ++i) {
            if (bucket[best] > bucket[i])
                best = i;
        }
        const Entry e = bucket[best];
        bucket[best] = bucket.back();
        bucket.pop_back();
        return e;
    }

    WarpEvent
    popCalendar()
    {
        for (;;) {
            while (inYear_ > 0) {
                std::vector<Entry> &b = buckets_[cursor_];
                if (!b.empty()) {
                    const Entry e = takeMin(b);
                    --inYear_;
                    return WarpEvent{e.time, e.warp};
                }
                if (++cursor_ == kNumBuckets) {
                    cursor_ = 0;
                    yearStart_ += yearSpan_;
                    migrateOverflow();
                }
            }
            // Every bucket is empty: simulated time jumps straight to
            // the overflow's year (the caller guarantees non-empty).
            const Cycles t = overflow_.front().time;
            yearStart_ = (t / yearSpan_) * yearSpan_;
            cursor_ = bucketOf(t);
            migrateOverflow();
        }
    }

    void
    migrateOverflow()
    {
        while (!overflow_.empty() &&
               overflow_.front().time < yearStart_ + yearSpan_) {
            std::pop_heap(overflow_.begin(), overflow_.end(),
                          std::greater<Entry>());
            const Entry e = overflow_.back();
            overflow_.pop_back();
            buckets_[bucketOf(e.time)].push_back(e);
            ++inYear_;
        }
    }

    Mode mode_;
    Cycles width_;
    size_t size_ = 0;

    // Heap mode.
    std::vector<WarpEvent> heap_;

    // Calendar mode.
    std::vector<std::vector<Entry>> buckets_;
    size_t cursor_ = 0;
    Cycles yearStart_ = 0;
    Cycles yearSpan_ = 0;
    size_t inYear_ = 0; ///< entries currently filed in buckets
    std::vector<Entry> overflow_; ///< min-heap of beyond-horizon entries
    uint64_t seq_ = 0;
};

} // namespace ladm

#endif // LADM_SIM_EVENT_QUEUE_HH
