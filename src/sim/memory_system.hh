/**
 * @file
 * MemorySystem: the full NUMA memory path of the simulated machine.
 *
 * Request flow (dynamic shared L2 with remote caching, after Milic [51]):
 *
 *   SM --L1--> chiplet crossbar --> local L2 partition
 *        hit: done
 *        miss: translate (UVM first-touch may fault) -> home node
 *              home == local:  local HBM
 *              home != local:  request over fabric -> home L2
 *                              (insertion policy: RTWICE caches it,
 *                               RONCE bypasses) -> home HBM on miss
 *                              -> data response back over fabric
 *
 * Timing is computed forward through bandwidth servers at issue; the
 * caller (the execution engine) is handed the completion cycle. All the
 * traffic accounting for Figs. 10/11 lives here.
 */

#ifndef LADM_SIM_MEMORY_SYSTEM_HH
#define LADM_SIM_MEMORY_SYSTEM_HH

#include <array>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "cache/insertion_policy.hh"
#include "cache/traffic_class.hh"
#include "common/bandwidth_server.hh"
#include "common/types.hh"
#include "config/system_config.hh"
#include "interconnect/network.hh"
#include "mem/dram.hh"
#include "mem/host_memory.hh"
#include "mem/migration.hh"
#include "mem/page_table.hh"
#include "mem/uvm.hh"
#include "sim/mshr_table.hh"

namespace ladm
{

namespace obs
{
class LatencyAttribution;
class LocalityHeatmap;
} // namespace obs

class MemorySystem
{
  public:
    explicit MemorySystem(const SystemConfig &cfg);

    /**
     * Issue a sector access from SM @p sm at cycle @p now.
     * @return completion cycle of the access.
     */
    Cycles access(Cycles now, SmId sm, Addr addr, bool write);

    // --- sharded (conservative-PDES) access path ---------------------------
    //
    // The sharded kernel engine partitions warps by NUMA node; each
    // shard thread calls shardAccess() for its own nodes only. Any part
    // of the path that would touch another node's state (fabric links,
    // home-side L2/DRAM, the page table) is deferred as a ShardOp and
    // executed by executeShardOps() inside the engine's serial barrier
    // section, in a canonical order independent of the shard count.

    enum class ShardOpKind : uint8_t
    {
        RemoteFetch,  ///< requester-L2 miss homed on another node
        Untranslated, ///< unmapped page: defer from translation onward
        Writeback,    ///< fire-and-forget dirty eviction to a remote home
    };

    /** One deferred cross-node operation. */
    struct ShardOp
    {
        Cycles time = 0;  ///< issue cycle (monotone within a lane)
        uint64_t seq = 0; ///< issue order within the lane
        Addr addr = 0;
        NodeId node = 0; ///< requester
        NodeId home = kInvalidNode;
        ShardOpKind kind = ShardOpKind::RemoteFetch;
        bool write = false;
        Cycles partial = 0; ///< node-local delay accrued before deferral
        Bytes bytes = 0;    ///< writeback payload
        Cycles done = 0;    ///< completion cycle; executeShardOps() fills
    };

    /** Sentinel "no deferred op" value in ShardAccess::op. */
    static constexpr uint32_t kShardNoOp = 0xFFFFFFFFu;

    /** shardAccess() result: either a completion cycle or an op index. */
    struct ShardAccess
    {
        Cycles done = 0;
        uint32_t op = kShardNoOp;
        bool deferred() const { return op != kShardNoOp; }
    };

    /**
     * Per-node access lane: this window's deferred-op outbox plus an
     * in-window merge map (same-sector accesses within one window join
     * the op already in flight, MSHR style). Owned by the engine, one
     * per node; only that node's shard thread may touch it between
     * barriers.
     */
    struct ShardLane
    {
        NodeId node = 0;
        uint64_t seq = 0;
        std::vector<ShardOp> ops;
        std::unordered_map<Addr, uint32_t> inflight;

        void
        clearWindow()
        {
            ops.clear();
            inflight.clear();
        }
    };

    /**
     * Node-exclusive part of the access path, callable concurrently from
     * shard threads as long as each node's lane has exactly one caller
     * and no serial-phase code runs simultaneously. L1, crossbar, MSHR
     * probe, read-only translation, and the local-homed L2/DRAM path
     * complete inline; anything cross-node returns a deferred op index.
     */
    ShardAccess shardAccess(ShardLane &lane, Cycles now, SmId sm,
                            Addr addr, bool write);

    /**
     * Serial barrier phase: sort this window's deferred ops from every
     * lane into canonical (time, requester node, issue seq) order and
     * execute them, filling each op's completion cycle. The canonical
     * order makes the result independent of how nodes were grouped into
     * shards.
     */
    void executeShardOps(std::vector<ShardOp *> &ops);

    /**
     * True when the sharded path models this configuration exactly:
     * fault injection, page migration, host-memory oversubscription and
     * the latency/heatmap observers all take locks-free shortcuts the
     * serial path must handle instead.
     */
    bool
    shardCompatible() const
    {
        return !chipletFaults_ && !cfg_.pageMigration && !host_ &&
               !obsLat_ && !obsHeat_;
    }

    /**
     * Name of the first feature blocking the sharded path, or nullptr
     * when shardCompatible(). Drives the engine's structured fallback
     * diagnostic so a silently-serial run is explainable.
     */
    const char *
    shardIncompatibleReason() const
    {
        if (chipletFaults_)
            return "fault injection (faultSpec)";
        if (cfg_.pageMigration)
            return "reactive page migration (pageMigration)";
        if (host_)
            return "host-memory oversubscription (hbmCapacityPerNode)";
        if (obsLat_)
            return "latency attribution observer (--obs-attribution)";
        if (obsHeat_)
            return "locality heatmap observer (--obs-heatmap)";
        return nullptr;
    }

    /** Set the L2 insertion policy for the next kernel (CRB decision). */
    void setInsertPolicy(L2InsertPolicy p) { policy_ = p; }
    L2InsertPolicy insertPolicy() const { return policy_; }

    /**
     * Kernel-boundary software coherence: invalidate every L1 and L2 and
     * drop outstanding-miss tracking (the inter-kernel locality loss the
     * paper attributes to [51]'s scheme).
     */
    void flushCaches();

    /**
     * Invariant check at a drain point (end of kernel, end of run): no
     * outstanding miss may complete after @p now, and no mapped page may
     * home outside the machine. A violation here means an MSHR entry
     * leaked past the cycle every warp supposedly retired at -- the
     * engine handed out a completion time nobody waited for.
     * @throws InvariantViolation listing the leaked sectors.
     */
    void checkDrained(Cycles now) const;

    /**
     * Test hook: plant an in-flight miss (sector @p addr on @p node
     * completing at @p readyAt) so tests can prove checkDrained() catches
     * a leak. Never called by the simulator itself.
     */
    void debugInjectPending(NodeId node, Addr addr, Cycles readyAt);

    /** The page table placement policies write into. */
    PageTable &pageTable() { return pageTable_; }
    const PageTable &pageTable() const { return pageTable_; }

    // --- statistics ---------------------------------------------------------
    /** Requester-side L2 misses served by local HBM. */
    uint64_t fetchLocal() const;
    /** Requester-side L2 misses that crossed a chiplet boundary. */
    uint64_t fetchRemote() const;
    /** Per-node variants: misses issued by node @p n's SMs. */
    uint64_t fetchLocal(NodeId n) const { return fetchLocal_[n]; }
    uint64_t fetchRemote(NodeId n) const { return fetchRemote_[n]; }
    /** Fraction [0,1] of fetches that left the node (Fig. 10 metric). */
    double offChipFraction() const;

    /**
     * Publish the whole memory path into the hierarchical registry:
     * per-node groups ("node3.l2", "node3.mem", "node3.l1", "node3.xbar"),
     * machine-wide aggregates ("mem.*", "uvm.*", traffic classes), the
     * interconnect ("net.*"), and derived formulas (off-chip fraction,
     * hit rates, link utilization when @p now is provided). Pull-based:
     * registration has no effect on simulation speed.
     */
    void registerStats(telemetry::StatRegistry &reg,
                       std::function<Cycles()> now = {});

    /**
     * Arm the observability hooks (obs::Observer's pillars). Either may
     * be null; with both null every hook on the access path reduces to
     * one untaken inline branch (the TraceEmitter discipline).
     */
    void
    attachObserver(obs::LatencyAttribution *lat, obs::LocalityHeatmap *heat)
    {
        obsLat_ = lat;
        obsHeat_ = heat;
    }

    uint64_t l2Accesses() const;
    uint64_t l2Hits() const;
    uint64_t l2SectorMisses() const;
    uint64_t l1Hits() const { return sumCtr(&NodeCounters::l1Hits); }
    uint64_t l1Accesses() const
    {
        return sumCtr(&NodeCounters::l1Accesses);
    }
    uint64_t uvmFaults() const { return uvm_.faults(); }
    uint64_t mshrMerges() const
    {
        return sumCtr(&NodeCounters::mshrMerges);
    }
    Cycles delayXbar() const { return sumCtr(&NodeCounters::delayXbar); }
    Cycles delayNet() const { return sumCtr(&NodeCounters::delayNet); }
    Cycles delayDram() const { return sumCtr(&NodeCounters::delayDram); }
    uint64_t writebackSectors() const
    {
        return sumCtr(&NodeCounters::writebackSectors);
    }

    /** Per-traffic-class L2 accesses / hits (Fig. 11). */
    uint64_t classAccesses(TrafficClass c) const
    {
        uint64_t v = 0;
        for (const NodeCounters &n : ctr_)
            v += n.clsAcc[static_cast<int>(c)];
        return v;
    }
    uint64_t classHits(TrafficClass c) const
    {
        uint64_t v = 0;
        for (const NodeCounters &n : ctr_)
            v += n.clsHit[static_cast<int>(c)];
        return v;
    }

    const Network &network() const { return *net_; }
    const SectoredCache &l2(NodeId n) const { return l2_[n]; }
    /** Aggregate DRAM accesses / busy cycles over a node's channels. */
    uint64_t dramAccesses(NodeId n) const;
    Cycles dramBusyCycles(NodeId n) const;
    uint64_t pageMigrations() const { return migration_.migrations(); }
    uint64_t hostDemandFaults() const
    {
        return host_ ? host_->demandFaults() : 0;
    }
    uint64_t hostPrefetches() const
    {
        return host_ ? host_->prefetches() : 0;
    }
    uint64_t hostEvictions() const
    {
        return host_ ? host_->evictions() : 0;
    }

    // --- fault injection ----------------------------------------------------
    /** Pages rescued off failed chiplets (faultDegradation on). */
    uint64_t rehomedPages() const
    {
        return sumCtr(&NodeCounters::rehomedPages);
    }
    /** Accesses that crawled to a failed home (faultDegradation off). */
    uint64_t failedNodeAccesses() const
    {
        return sumCtr(&NodeCounters::failedNodeAccesses);
    }

    /**
     * Reset all statistics and the outstanding-miss (MSHR) tracking --
     * a completion time from a previous measurement window must not
     * satisfy merges in the next one. Cache *contents* survive.
     */
    void resetStats();

    /**
     * Checkpoint the whole memory path -- page table, UVM, caches, DRAM
     * channels, crossbars, fabric, MSHR tables, per-node counters
     * (snapshot/component_state.cc). Must be called at an engine safe
     * point (no access in flight).
     */
    void saveState(serial::Writer &w) const;
    void loadState(serial::Reader &r);

  private:
    /**
     * Per-requesting-node statistics. Splitting the aggregates by node
     * (indexed by the requester, summed by the getters) keeps the
     * sharded engine's parallel phases free of shared counter writes;
     * the cache-line alignment stops shards from false-sharing
     * neighbours. Serial results are bit-identical: integer sums are
     * order-independent.
     */
    struct alignas(64) NodeCounters
    {
        Cycles delayXbar = 0;
        Cycles delayNet = 0;
        Cycles delayDram = 0;
        uint64_t l1Hits = 0;
        uint64_t l1Accesses = 0;
        uint64_t mshrMerges = 0;
        uint64_t writebackSectors = 0;
        uint64_t rehomedPages = 0;
        uint64_t failedNodeAccesses = 0;
        std::array<uint64_t, kNumTrafficClasses> clsAcc{};
        std::array<uint64_t, kNumTrafficClasses> clsHit{};
    };

    template <typename T>
    T
    sumCtr(T NodeCounters::*member) const
    {
        T v = 0;
        for (const NodeCounters &n : ctr_)
            v += n.*member;
        return v;
    }

    /** Early-out inline: the overwhelmingly common clean case is free. */
    void
    handleEviction(Cycles now, NodeId node, const EvictInfo &ev)
    {
        if (!ev.evicted || ev.dirtyMask == 0)
            return;
        handleDirtyEviction(now, node, ev);
    }
    void handleDirtyEviction(Cycles now, NodeId node, const EvictInfo &ev);

    /** Deferred-path twin: resolves the victim's home without touching
     *  the TLB and defers cross-node writebacks into @p lane. */
    void shardHandleEviction(ShardLane &lane, Cycles now, NodeId node,
                             const EvictInfo &ev);
    /** Serial phase: requester-side L2 onward for an Untranslated op. */
    void finishShardFetch(ShardOp &op);
    /** Serial phase: both fabric legs + home-side L2/DRAM of a fetch. */
    void execRemoteLeg(ShardOp &op);
    /** Amortized-sweep pending-table insert shared by the deferred path. */
    void insertPendingSwept(NodeId node, Addr addr, Cycles now,
                            Cycles done);

    void
    countClass(NodeId origin, NodeId home, NodeId here, bool hit)
    {
        const int c = static_cast<int>(classifyTraffic(origin, home, here));
        ++ctr_[origin].clsAcc[c];
        if (hit)
            ++ctr_[origin].clsHit[c];
    }

    /** Cold helpers: decompose a completed access for attribution. */
    void obsL1Hit(NodeId node);
    void obsMerge(NodeId node, Cycles xbar, Cycles wait, Cycles total);
    void obsL2Hit(NodeId node, NodeId home, Cycles xbar, Cycles fault,
                  Cycles total);
    void obsMiss(NodeId node, NodeId home, Cycles xbar, Cycles fault,
                 Cycles l2, Cycles ring, Cycles link, Cycles dram,
                 Cycles total);

    const SystemConfig cfg_;
    PageTable pageTable_;
    Uvm uvm_;

    /**
     * Channel-interleave at line granularity with a spreading hash. The
     * channel count is hoisted to a member and, when a power of two (the
     * default), the modulo reduces to a mask -- identical arithmetic.
     */
    Dram &
    dramFor(NodeId node, Addr addr)
    {
        const uint64_t line = addr / kLineSize;
        const uint64_t h = line ^ (line >> 7);
        const size_t chan = static_cast<size_t>(
            dramChanMask_ ? (h & dramChanMask_)
                          : (h % static_cast<uint64_t>(dramChannels_)));
        return dram_[static_cast<size_t>(node) * dramChannels_ + chan];
    }

    std::vector<SectoredCache> l1_;     // per SM
    std::vector<SectoredCache> l2_;     // per node
    std::vector<Dram> dram_;            // per node x channel
    std::vector<BandwidthServer> xbar_; // per node SM<->L2 crossbar
    MigrationEngine migration_;
    std::unique_ptr<HostMemory> host_; // oversubscription model (opt.)
    std::unique_ptr<Network> net_;
    L2InsertPolicy policy_ = L2InsertPolicy::RTwice;
    /** Fast-path gate: faultSpec has chiplet failures to police. */
    bool chipletFaults_ = false;

    /** Outstanding-miss table per node: sector -> data-ready cycle. */
    std::vector<MshrTable> pending_;
    /**
     * Sweep floor for the outstanding-miss tables: a node's table is
     * swept of expired entries once it reaches this size. Expired
     * entries can never satisfy a merge (`now` is globally monotone),
     * so the floor is pure performance policy: 64K keeps the table
     * within ~2MB and its probes cache-resident, where a higher floor
     * lets it balloon to tens of MB of dead entries.
     */
    static constexpr size_t kSweepFloor = size_t{1} << 16;
    /** Per-node size watermark for the amortized pending-table sweep. */
    std::vector<size_t> pendingSweepAt_;
    /** nodeOfSm() hoisted into a table, built once per topology. */
    std::vector<NodeId> smNode_;
    /** max(1, cfg.dramChannelsPerChiplet), hoisted for dramFor(). */
    int dramChannels_ = 1;
    /** dramChannels_ - 1 when it is a power of two, else 0 (slow path). */
    uint64_t dramChanMask_ = 0;

    /** Control-message size for remote read requests / write acks. */
    static constexpr Bytes kCtrlBytes = 8;

    /** Per-requesting-node fetch counts (index = NodeId). */
    std::vector<uint64_t> fetchLocal_;
    std::vector<uint64_t> fetchRemote_;
    /** Per-requesting-node counters; getters sum across nodes. */
    std::vector<NodeCounters> ctr_;

    /** Observability pillars, armed by attachObserver (null = off). */
    obs::LatencyAttribution *obsLat_ = nullptr;
    obs::LocalityHeatmap *obsHeat_ = nullptr;
};

} // namespace ladm

#endif // LADM_SIM_MEMORY_SYSTEM_HH
