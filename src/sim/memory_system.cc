#include "sim/memory_system.hh"

#include <algorithm>
#include <cstdio>

#include "check/invariants.hh"
#include "common/bitutils.hh"
#include "common/logging.hh"
#include "mem/address.hh"
#include "obs/attribution.hh"
#include "obs/heatmap.hh"
#include "telemetry/stat_registry.hh"

namespace ladm
{

MemorySystem::MemorySystem(const SystemConfig &cfg)
    : cfg_(cfg), pageTable_(cfg.pageSize),
      uvm_(cfg.pageFaultCycles,
           cfg.uvmFirstTouchInterleave ? cfg.numNodes() : 1),
      net_(makeNetwork(cfg)),
      migration_(cfg.migrationThreshold, cfg.migrationLatencyCycles,
                 cfg.pageSize)
{
    cfg_.validate();
    chipletFaults_ = net_->faultPlan().anyChipletFaults();
    const int nodes = cfg_.numNodes();
    const int sms = cfg_.totalSms();
    const int channels = std::max(1, cfg_.dramChannelsPerChiplet);
    dramChannels_ = channels;
    if (isPowerOfTwo(static_cast<uint64_t>(channels)))
        dramChanMask_ = static_cast<uint64_t>(channels) - 1;

    fetchLocal_.assign(nodes, 0);
    fetchRemote_.assign(nodes, 0);
    ctr_.assign(nodes, NodeCounters{});

    l1_.reserve(sms);
    smNode_.resize(sms);
    for (int s = 0; s < sms; ++s) {
        l1_.emplace_back(cfg_.l1SizePerSm, cfg_.l1Assoc,
                         "l1.sm" + std::to_string(s));
        smNode_[s] = cfg_.nodeOfSm(s);
    }

    l2_.reserve(nodes);
    dram_.reserve(static_cast<size_t>(nodes) * channels);
    xbar_.reserve(nodes);
    pending_.resize(nodes);
    pendingSweepAt_.assign(nodes, kSweepFloor);
    const double chan_bpc =
        cfg_.bytesPerCycle(cfg_.memBwPerChipletGBs) / channels;
    const double xbar_bpc = cfg_.bytesPerCycle(cfg_.intraChipletXbarGBs);
    for (int n = 0; n < nodes; ++n) {
        l2_.emplace_back(cfg_.l2SizePerChiplet, cfg_.l2Assoc,
                         "l2.node" + std::to_string(n));
        for (int c = 0; c < channels; ++c)
            dram_.emplace_back(chan_bpc, cfg_.dramLatencyCycles);
        xbar_.emplace_back(xbar_bpc, Cycles{0});
    }
    if (cfg_.hbmCapacityPerNode > 0) {
        host_ = std::make_unique<HostMemory>(
            nodes, cfg_.hbmCapacityPerNode,
            cfg_.bytesPerCycle(cfg_.hostLinkGBs), cfg_.hostFaultCycles,
            cfg_.pageSize);
    }
}

uint64_t
MemorySystem::dramAccesses(NodeId n) const
{
    uint64_t v = 0;
    for (int c = 0; c < dramChannels_; ++c)
        v += dram_[static_cast<size_t>(n) * dramChannels_ + c].accesses();
    return v;
}

Cycles
MemorySystem::dramBusyCycles(NodeId n) const
{
    Cycles v = 0;
    for (int c = 0; c < dramChannels_; ++c)
        v += dram_[static_cast<size_t>(n) * dramChannels_ + c]
                 .busyCycles();
    return v;
}

void
MemorySystem::handleDirtyEviction(Cycles now, NodeId node,
                                  const EvictInfo &ev)
{
    const int dirty = __builtin_popcount(ev.dirtyMask);
    ctr_[node].writebackSectors += dirty;
    const Bytes bytes = static_cast<Bytes>(dirty) * kSectorSize;
    NodeId home = pageTable_.lookup(ev.lineAddr);
    if (home == kInvalidNode)
        home = node;
    // Fire-and-forget: the writeback consumes bandwidth but nobody waits.
    if (home != node)
        net_->routeDelay(now, node, home, bytes);
    dramFor(home, ev.lineAddr).book(now, bytes);
}

Cycles
MemorySystem::access(Cycles now, SmId sm, Addr addr, bool write)
{
    // The issue time `now` is globally monotone (the engine processes
    // warp events in time order), so every bandwidth resource along the
    // path is booked at `now` and contributes a delay; see the ordering
    // contract in common/bandwidth_server.hh. Booking downstream
    // resources at their actual (future) arrival times instead would
    // interleave non-monotone timestamps and manufacture phantom
    // serialization.
    addr = sectorBase(addr);
    const NodeId node = smNode_[sm];

    // Start pulling the structures an L1 miss will probe -- the MSHR
    // slot, the L2 tag set, and the translation TLB entry -- while the
    // L1 lookup runs. All pure prefetch hints, no architectural effect.
    pending_[node].prefetch(addr);
    l2_[node].prefetchSet(addr);
    pageTable_.prefetch(addr);

    // L1: reads allocate; writes are write-through no-allocate with
    // write-invalidate (GPU L1s do not hold dirty global data, and a
    // matching sector must not serve stale data to later reads).
    NodeCounters &ctr = ctr_[node];
    if (!write) {
        ++ctr.l1Accesses;
        if (l1_[sm].access(addr, false, true) == AccessResult::Hit) {
            ++ctr.l1Hits;
            if (obsLat_)
                obsL1Hit(node);
            return now + cfg_.l1LatencyCycles;
        }
    } else {
        l1_[sm].invalidateSector(addr);
    }
    Cycles delay = cfg_.l1LatencyCycles;

    // SM <-> L2 crossbar within the chiplet.
    Cycles obs_xbar = 0;
    {
        const Cycles d = xbar_[node].book(now, kSectorSize);
        ctr.delayXbar += d;
        delay += d;
        obs_xbar = d;
    }

    // Outstanding-miss merge (MSHR): if this sector is already in flight
    // from this node, ride along. A stale (expired) entry is NOT erased
    // here: the insertAt() at the end of the miss path overwrites it in
    // place, so the probe chain is walked once per access, not three
    // times. Nothing between here and there may mutate this table.
    auto &pend = pending_[node];
    const MshrTable::Ref mshr = pend.locate(addr);
    if (mshr.found) {
        const Cycles ready = pend.readyAt(mshr);
        if (ready > now + delay) {
            ++ctr.mshrMerges;
            if (obsLat_)
                obsMerge(node, obs_xbar, ready - now - delay, ready - now);
            return ready;
        }
    }

    // Translate before the requester-side L2 decision: whether this L2
    // may hold the line depends on where the page *actually* homes, so
    // a first touch must resolve (and possibly fault) the home up
    // front. Deciding from the pre-fault lookup wrongly allocated
    // remote-homed first-touch lines in the requester's L2 even with
    // remote caching off. A hit on an unmapped page is impossible (a
    // line only enters the L2 through this miss path, which maps the
    // page), so the fault stall charged on the hit return is zero in
    // practice.
    const NodeId mapped_home = pageTable_.lookup(addr);
    Cycles fault_stall = 0;
    NodeId home =
        mapped_home != kInvalidNode
            ? mapped_home
            : uvm_.touch(pageTable_, addr, node, fault_stall);

    // Failed chiplet (fault injection): its HBM stack is gone. With
    // graceful degradation the page is rescued to a healthy node on first
    // access -- one page transfer, then business as usual. Without it the
    // access crawls to the dead stack over the maintenance path at
    // kSeveredResidualFactor of DRAM speed, every time.
    if (chipletFaults_ &&
        net_->faultPlan().nodeFailed(now, home)) {
        if (cfg_.faultDegradation) {
            const NodeId to =
                net_->faultPlan().fallbackNode(now, home, cfg_);
            // Rescue the WHOLE page: re-home it (which also drops its
            // translation-TLB entry) and invalidate every sector of it
            // still cached on the dead chiplet -- not just the sector
            // being touched. Leftover sibling sectors would otherwise
            // keep serving hits from a failed node's L2.
            pageTable_.place(addr, 1, to); // expands to the whole page
            const Addr page = roundDown(addr, cfg_.pageSize);
            l2_[home].invalidateRange(page, page + cfg_.pageSize);
            fault_stall += net_->routeDelay(now, home, to, cfg_.pageSize);
            ++ctr.rehomedPages;
            home = to;
        } else {
            fault_stall += cfg_.dramLatencyCycles *
                           static_cast<Cycles>(
                               1.0 / check::kSeveredResidualFactor);
            ++ctr.failedNodeAccesses;
        }
    }

    // Requester-side L2: the dynamic shared L2 [51] caches whatever its
    // own SMs touch; without remote caching it only holds local-homed
    // lines (memory-side L2).
    const bool req_alloc = cfg_.remoteCachingL2 || home == node;
    EvictInfo ev;
    const AccessResult r2 = l2_[node].access(addr, write, req_alloc, &ev);
    if (r2 == AccessResult::Hit) {
        countClass(node, home, node, true);
        if (obsLat_) {
            obsL2Hit(node, home, obs_xbar, fault_stall,
                     delay + fault_stall + cfg_.l2LatencyCycles);
        }
        return now + delay + fault_stall + cfg_.l2LatencyCycles;
    }

    delay += fault_stall + cfg_.l2LatencyCycles;
    countClass(node, home, node, false);
    handleEviction(now, node, ev);

    // Latency-attribution component accumulators: plain locals on the
    // (already expensive) miss path; zero-valued and dead when obs is off.
    Cycles obs_l2 = cfg_.l2LatencyCycles;
    Cycles obs_ring = 0, obs_link = 0, obs_dram = 0;

    if (cfg_.pageMigration) {
        delay += migration_.onFetch(pageTable_, *net_, now, addr, node,
                                    home);
    }

    if (host_) {
        // Oversubscription: the page must be device-resident at its
        // home. A page that was already mapped before this access was
        // placed proactively (LASP prefetch); an unmapped one is being
        // first-touched right now, i.e. a reactive demand fault.
        delay += host_->ensureResident(
            now, addr, home, /*proactive=*/mapped_home != kInvalidNode);
    }

    // Mirrors the fetchLocal_/fetchRemote_ increments below one-for-one;
    // the heatmap conservation check depends on this adjacency.
    if (obsHeat_)
        obsHeat_->recordFetch(node, home, addr);

    if (home == node) {
        ++fetchLocal_[node];
        const Cycles d = dramFor(node, addr).book(now, kSectorSize);
        ctr.delayDram += d;
        delay += d;
        obs_dram = d;
    } else {
        ++fetchRemote_[node];
        // Both fabric legs of a remote fetch attribute to one component:
        // ring when requester and home share a GPU, inter-GPU link
        // otherwise (a cross-GPU route's ring segments ride along).
        const bool same_gpu = cfg_.gpuOfNode(node) == cfg_.gpuOfNode(home);
        Cycles &leg = same_gpu ? obs_ring : obs_link;
        // Read: small request out, sector back. Write: sector out, ack
        // back.
        {
            const Cycles d = net_->routeDelay(now, node, home,
                                              write ? kSectorSize
                                                    : kCtrlBytes);
            ctr.delayNet += d;
            delay += d;
            leg += d;
        }

        const bool alloc = homeSideAllocates(policy_, true);
        EvictInfo ev_home;
        const AccessResult r3 = l2_[home].access(addr, write, alloc,
                                                 &ev_home);
        countClass(node, home, home, r3 == AccessResult::Hit);
        handleEviction(now, home, ev_home);
        delay += cfg_.l2LatencyCycles;
        obs_l2 += cfg_.l2LatencyCycles;
        if (r3 != AccessResult::Hit) {
            const Cycles d = dramFor(home, addr).book(now, kSectorSize);
            ctr.delayDram += d;
            delay += d;
            obs_dram = d;
        }

        {
            const Cycles d = net_->routeDelay(now, home, node,
                                              write ? kCtrlBytes
                                                    : kSectorSize);
            ctr.delayNet += d;
            delay += d;
            leg += d;
        }
    }

    if (obsLat_) {
        obsMiss(node, home, obs_xbar, fault_stall, obs_l2, obs_ring,
                obs_link, obs_dram, delay);
    }

    // Bound the outstanding-miss table: expired entries are dead
    // weight. The sweep is amortized -- after each pass the next
    // watermark doubles from whatever survived, so a table full of
    // still-in-flight entries cannot trigger an O(n) scan per access.
    const Cycles done = now + delay;
    if (pend.size() >= pendingSweepAt_[node]) {
        pend.sweepExpired(now);
        pendingSweepAt_[node] =
            std::max<size_t>(2 * pend.size(), kSweepFloor);
        pend.insert(addr, done); // the sweep invalidated the Ref
    } else {
        pend.insertAt(mshr, addr, done);
    }
    return done;
}

void
MemorySystem::obsL1Hit(NodeId node)
{
    obs::AccessSample s;
    s.node = node;
    s.comp[static_cast<size_t>(obs::LatComponent::L1)] =
        cfg_.l1LatencyCycles;
    s.comp[static_cast<size_t>(obs::LatComponent::Total)] =
        cfg_.l1LatencyCycles;
    obsLat_->record(s);
}

void
MemorySystem::obsMerge(NodeId node, Cycles xbar, Cycles wait, Cycles total)
{
    obs::AccessSample s;
    s.node = node;
    s.comp[static_cast<size_t>(obs::LatComponent::L1)] =
        cfg_.l1LatencyCycles;
    s.comp[static_cast<size_t>(obs::LatComponent::Xbar)] = xbar;
    s.comp[static_cast<size_t>(obs::LatComponent::MshrWait)] = wait;
    s.comp[static_cast<size_t>(obs::LatComponent::Total)] = total;
    obsLat_->record(s);
}

void
MemorySystem::obsL2Hit(NodeId node, NodeId home, Cycles xbar, Cycles fault,
                       Cycles total)
{
    obs::AccessSample s;
    s.node = node;
    s.trafficClass = static_cast<int>(classifyTraffic(node, home, node));
    s.comp[static_cast<size_t>(obs::LatComponent::L1)] =
        cfg_.l1LatencyCycles;
    s.comp[static_cast<size_t>(obs::LatComponent::Xbar)] = xbar;
    s.comp[static_cast<size_t>(obs::LatComponent::FaultStall)] = fault;
    s.comp[static_cast<size_t>(obs::LatComponent::L2)] =
        cfg_.l2LatencyCycles;
    s.comp[static_cast<size_t>(obs::LatComponent::Total)] = total;
    obsLat_->record(s);
}

void
MemorySystem::obsMiss(NodeId node, NodeId home, Cycles xbar, Cycles fault,
                      Cycles l2, Cycles ring, Cycles link, Cycles dram,
                      Cycles total)
{
    obs::AccessSample s;
    s.node = node;
    s.trafficClass = static_cast<int>(classifyTraffic(node, home, node));
    s.comp[static_cast<size_t>(obs::LatComponent::L1)] =
        cfg_.l1LatencyCycles;
    s.comp[static_cast<size_t>(obs::LatComponent::Xbar)] = xbar;
    s.comp[static_cast<size_t>(obs::LatComponent::FaultStall)] = fault;
    s.comp[static_cast<size_t>(obs::LatComponent::L2)] = l2;
    s.comp[static_cast<size_t>(obs::LatComponent::Ring)] = ring;
    s.comp[static_cast<size_t>(obs::LatComponent::GpuLink)] = link;
    s.comp[static_cast<size_t>(obs::LatComponent::Dram)] = dram;
    // Residual (migration, host-memory residency) keeps the decomposition
    // summing to the end-to-end latency exactly.
    const Cycles known = cfg_.l1LatencyCycles + xbar + fault + l2 + ring +
                         link + dram;
    s.comp[static_cast<size_t>(obs::LatComponent::Other)] =
        total > known ? total - known : 0;
    s.comp[static_cast<size_t>(obs::LatComponent::Total)] = total;
    obsLat_->record(s);
}

void
MemorySystem::registerStats(telemetry::StatRegistry &reg,
                            std::function<Cycles()> now)
{
    using telemetry::StatRegistry;
    const StatKind acc = StatKind::Counter;
    const int nodes = cfg_.numNodes();
    const int sms_per_node = cfg_.smsPerChiplet;

    for (NodeId n = 0; n < nodes; ++n) {
        const std::string node = "node" + std::to_string(n);
        l2_[n].registerStats(reg, node + ".l2");
        reg.gauge(node + ".mem.fetch_local",
                  [this, n] {
                      return static_cast<double>(fetchLocal_[n]);
                  },
                  acc);
        reg.gauge(node + ".mem.fetch_remote",
                  [this, n] {
                      return static_cast<double>(fetchRemote_[n]);
                  },
                  acc);
        reg.formula(node + ".mem.remote_fraction", [this, n] {
            const uint64_t total = fetchLocal_[n] + fetchRemote_[n];
            return total ? static_cast<double>(fetchRemote_[n]) / total
                         : 0.0;
        });
        reg.gauge(node + ".mem.dram_accesses",
                  [this, n] {
                      return static_cast<double>(dramAccesses(n));
                  },
                  acc);
        reg.gauge(node + ".mem.dram_busy_cycles",
                  [this, n] {
                      return static_cast<double>(dramBusyCycles(n));
                  },
                  acc);
        reg.gauge(node + ".xbar.bytes",
                  [this, n] {
                      return static_cast<double>(xbar_[n].totalBytes());
                  },
                  acc);
        // L1s aggregated per node: per-SM leaves would be 6x totalSms()
        // gauges of noise for a stat nobody reads individually.
        reg.gauge(node + ".l1.accesses",
                  [this, n, sms_per_node] {
                      uint64_t v = 0;
                      for (int s = 0; s < sms_per_node; ++s)
                          v += l1_[n * sms_per_node + s].accesses();
                      return static_cast<double>(v);
                  },
                  acc);
        reg.gauge(node + ".l1.hits",
                  [this, n, sms_per_node] {
                      uint64_t v = 0;
                      for (int s = 0; s < sms_per_node; ++s)
                          v += l1_[n * sms_per_node + s].hits();
                      return static_cast<double>(v);
                  },
                  acc);
    }

    reg.gauge("mem.fetch_local",
              [this] { return static_cast<double>(fetchLocal()); }, acc);
    reg.gauge("mem.fetch_remote",
              [this] { return static_cast<double>(fetchRemote()); }, acc);
    reg.formula("mem.offchip_fraction",
                [this] { return offChipFraction(); });
    reg.gauge("mem.l1_accesses",
              [this] { return static_cast<double>(l1Accesses()); }, acc);
    reg.gauge("mem.l1_hits",
              [this] { return static_cast<double>(l1Hits()); }, acc);
    reg.gauge("mem.l2_accesses",
              [this] { return static_cast<double>(l2Accesses()); }, acc);
    reg.gauge("mem.l2_hits",
              [this] { return static_cast<double>(l2Hits()); }, acc);
    reg.gauge("mem.mshr_merges",
              [this] { return static_cast<double>(mshrMerges()); }, acc);
    reg.gauge("mem.writeback_sectors",
              [this] {
                  return static_cast<double>(writebackSectors());
              },
              acc);
    reg.gauge("mem.delay_xbar",
              [this] { return static_cast<double>(delayXbar()); }, acc);
    reg.gauge("mem.delay_net",
              [this] { return static_cast<double>(delayNet()); }, acc);
    reg.gauge("mem.delay_dram",
              [this] { return static_cast<double>(delayDram()); }, acc);
    for (int c = 0; c < kNumTrafficClasses; ++c) {
        const std::string cls =
            std::string("mem.class.") +
            toString(static_cast<TrafficClass>(c));
        reg.gauge(cls + ".accesses",
                  [this, c] {
                      return static_cast<double>(classAccesses(
                          static_cast<TrafficClass>(c)));
                  },
                  acc);
        reg.gauge(cls + ".hits",
                  [this, c] {
                      return static_cast<double>(classHits(
                          static_cast<TrafficClass>(c)));
                  },
                  acc);
    }
    if (chipletFaults_) {
        reg.gauge("mem.fault.rehomed_pages",
                  [this] {
                      return static_cast<double>(rehomedPages());
                  },
                  acc);
        reg.gauge("mem.fault.failed_node_accesses",
                  [this] {
                      return static_cast<double>(failedNodeAccesses());
                  },
                  acc);
    }
    reg.gauge("uvm.faults",
              [this] { return static_cast<double>(uvmFaults()); }, acc);
    reg.gauge("uvm.page_migrations",
              [this] { return static_cast<double>(pageMigrations()); },
              acc);
    if (host_) {
        reg.gauge("host.demand_faults",
                  [this] {
                      return static_cast<double>(hostDemandFaults());
                  },
                  acc);
        reg.gauge("host.prefetches",
                  [this] {
                      return static_cast<double>(hostPrefetches());
                  },
                  acc);
        reg.gauge("host.evictions",
                  [this] {
                      return static_cast<double>(hostEvictions());
                  },
                  acc);
    }
    net_->registerStats(reg, std::move(now));
}

void
MemorySystem::checkDrained(Cycles now) const
{
    std::vector<Diagnostic> diags;
    constexpr size_t kMaxListed = 8;
    size_t leaked = 0;
    for (size_t n = 0; n < pending_.size(); ++n) {
        pending_[n].forEach([&](Addr addr, Cycles ready) {
            if (ready <= now)
                return;
            ++leaked;
            if (diags.size() < kMaxListed) {
                char hex[24];
                std::snprintf(hex, sizeof(hex), "sector 0x%llx",
                              static_cast<unsigned long long>(addr));
                diags.push_back(
                    {"node" + std::to_string(n) + ".mshr", hex,
                     "completes at cycle " + std::to_string(ready) +
                         " > drain cycle " + std::to_string(now),
                     "a completion time was handed out that nobody "
                     "waited for"});
            }
        });
    }
    if (!diags.empty()) {
        throw InvariantViolation(
            "memory system not drained: " + std::to_string(leaked) +
                " outstanding miss(es) outlive the drain point",
            std::move(diags));
    }
}

void
MemorySystem::debugInjectPending(NodeId node, Addr addr, Cycles readyAt)
{
    pending_[node].insert(sectorBase(addr), readyAt);
}

void
MemorySystem::flushCaches()
{
    for (size_t s = 0; s < l1_.size(); ++s)
        ctr_[smNode_[s]].writebackSectors += l1_[s].invalidateAll();
    for (size_t n = 0; n < l2_.size(); ++n)
        ctr_[n].writebackSectors += l2_[n].invalidateAll();
    for (auto &p : pending_)
        p.clear();
}

uint64_t
MemorySystem::fetchLocal() const
{
    uint64_t v = 0;
    for (const uint64_t n : fetchLocal_)
        v += n;
    return v;
}

uint64_t
MemorySystem::fetchRemote() const
{
    uint64_t v = 0;
    for (const uint64_t n : fetchRemote_)
        v += n;
    return v;
}

double
MemorySystem::offChipFraction() const
{
    const uint64_t remote = fetchRemote();
    const uint64_t total = fetchLocal() + remote;
    return total ? static_cast<double>(remote) / total : 0.0;
}

uint64_t
MemorySystem::l2Accesses() const
{
    uint64_t v = 0;
    for (const auto &c : l2_)
        v += c.accesses();
    return v;
}

uint64_t
MemorySystem::l2Hits() const
{
    uint64_t v = 0;
    for (const auto &c : l2_)
        v += c.hits();
    return v;
}

uint64_t
MemorySystem::l2SectorMisses() const
{
    uint64_t v = 0;
    for (const auto &c : l2_)
        v += c.sectorMisses() + c.lineMisses();
    return v;
}

void
MemorySystem::resetStats()
{
    fetchLocal_.assign(fetchLocal_.size(), 0);
    fetchRemote_.assign(fetchRemote_.size(), 0);
    ctr_.assign(ctr_.size(), NodeCounters{});
    uvm_.reset();
    migration_.reset();
    if (host_)
        host_->resetStats();
    for (auto &c : l1_)
        c.resetStats();
    for (auto &c : l2_)
        c.resetStats();
    // Bandwidth servers and the network: clear byte/busy statistics but
    // keep timing state (next-free cycles). Zeroing the timing too would
    // warp link availability back to cycle 0 mid-run; skipping the
    // servers entirely (the old behaviour) leaked utilization from
    // before the measurement window into it.
    for (auto &x : xbar_)
        x.resetStats();
    for (auto &d : dram_)
        d.resetStats();
    net_->resetStats();
    // Outstanding-miss state belongs to the measurement window: a stale
    // completion time surviving into the next window would satisfy
    // merges with timestamps from the previous one.
    for (auto &p : pending_)
        p.clear();
    pendingSweepAt_.assign(pendingSweepAt_.size(), kSweepFloor);
}

// --- sharded (conservative-PDES) access path -----------------------------
//
// The contract mirrors access() step for step. Everything up to (and
// including) the requester-side L2 for a *mapped* address touches only
// node-exclusive state -- the SM's L1, the node's crossbar server, MSHR
// table, L2 partition and DRAM channels -- and runs in the parallel
// phase. Three things cross nodes and are deferred: the fabric legs plus
// home-side L2/DRAM of a remote fetch, everything after translation for
// an unmapped page (the UVM first touch mutates the page table), and a
// dirty eviction homed remotely. Timestamps stay honest: a deferred op
// executes with its original issue time, so the bandwidth servers see
// the same booking times the serial engine would have produced, modulo
// the simultaneity order documented in docs/performance.md.

MemorySystem::ShardAccess
MemorySystem::shardAccess(ShardLane &lane, Cycles now, SmId sm, Addr addr,
                          bool write)
{
    addr = sectorBase(addr);
    const NodeId node = smNode_[sm];
    NodeCounters &ctr = ctr_[node];

    pending_[node].prefetch(addr);
    l2_[node].prefetchSet(addr);
    pageTable_.prefetch(addr);

    if (!write) {
        ++ctr.l1Accesses;
        if (l1_[sm].access(addr, false, true) == AccessResult::Hit) {
            ++ctr.l1Hits;
            return {now + cfg_.l1LatencyCycles, kShardNoOp};
        }
    } else {
        l1_[sm].invalidateSector(addr);
    }
    Cycles delay = cfg_.l1LatencyCycles;
    {
        const Cycles d = xbar_[node].book(now, kSectorSize);
        ctr.delayXbar += d;
        delay += d;
    }

    auto &pend = pending_[node];
    const MshrTable::Ref mshr = pend.locate(addr);
    if (mshr.found) {
        const Cycles ready = pend.readyAt(mshr);
        if (ready > now + delay) {
            ++ctr.mshrMerges;
            return {ready, kShardNoOp};
        }
    }
    // In-window join: the sector is already being fetched by an earlier
    // access in this window; ride the deferred op instead of issuing a
    // second fetch (the MSHR entry only appears once the op executes).
    if (const auto it = lane.inflight.find(addr);
        it != lane.inflight.end()) {
        ++ctr.mshrMerges;
        return {0, it->second};
    }

    const NodeId home = pageTable_.lookupNoFill(addr);
    if (home == kInvalidNode) {
        // First touch: the UVM fault mutates the page table, which is
        // machine-global. Defer everything from translation onward.
        const auto idx = static_cast<uint32_t>(lane.ops.size());
        lane.ops.push_back({now, lane.seq++, addr, node, kInvalidNode,
                            ShardOpKind::Untranslated, write, delay, 0,
                            0});
        lane.inflight.emplace(addr, idx);
        return {0, idx};
    }

    const bool req_alloc = cfg_.remoteCachingL2 || home == node;
    EvictInfo ev;
    const AccessResult r2 = l2_[node].access(addr, write, req_alloc, &ev);
    if (r2 == AccessResult::Hit) {
        countClass(node, home, node, true);
        return {now + delay + cfg_.l2LatencyCycles, kShardNoOp};
    }
    delay += cfg_.l2LatencyCycles;
    countClass(node, home, node, false);
    shardHandleEviction(lane, now, node, ev);

    if (home == node) {
        ++fetchLocal_[node];
        const Cycles d = dramFor(node, addr).book(now, kSectorSize);
        ctr.delayDram += d;
        delay += d;
        const Cycles done = now + delay;
        if (pend.size() >= pendingSweepAt_[node]) {
            pend.sweepExpired(now);
            pendingSweepAt_[node] =
                std::max<size_t>(2 * pend.size(), kSweepFloor);
            pend.insert(addr, done);
        } else {
            pend.insertAt(mshr, addr, done);
        }
        return {done, kShardNoOp};
    }

    ++fetchRemote_[node];
    const auto idx = static_cast<uint32_t>(lane.ops.size());
    lane.ops.push_back({now, lane.seq++, addr, node, home,
                        ShardOpKind::RemoteFetch, write, delay, 0, 0});
    lane.inflight.emplace(addr, idx);
    return {0, idx};
}

void
MemorySystem::shardHandleEviction(ShardLane &lane, Cycles now, NodeId node,
                                  const EvictInfo &ev)
{
    if (!ev.evicted || ev.dirtyMask == 0)
        return;
    const int dirty = __builtin_popcount(ev.dirtyMask);
    ctr_[node].writebackSectors += dirty;
    const Bytes bytes = static_cast<Bytes>(dirty) * kSectorSize;
    NodeId home = pageTable_.lookupNoFill(ev.lineAddr);
    if (home == kInvalidNode)
        home = node;
    if (home == node) {
        dramFor(node, ev.lineAddr).book(now, bytes);
        return;
    }
    // Fire-and-forget: nobody waits on a writeback, but the fabric and
    // home DRAM bookings are cross-node, so they ride the barrier.
    lane.ops.push_back({now, lane.seq++, ev.lineAddr, node, home,
                        ShardOpKind::Writeback, true, 0, bytes, 0});
}

void
MemorySystem::insertPendingSwept(NodeId node, Addr addr, Cycles now,
                                 Cycles done)
{
    auto &pend = pending_[node];
    if (pend.size() >= pendingSweepAt_[node]) {
        pend.sweepExpired(now);
        pendingSweepAt_[node] =
            std::max<size_t>(2 * pend.size(), kSweepFloor);
    }
    pend.insert(addr, done);
}

void
MemorySystem::execRemoteLeg(ShardOp &op)
{
    const NodeId node = op.node;
    const NodeId home = op.home;
    NodeCounters &ctr = ctr_[node];
    Cycles delay = op.partial;
    {
        const Cycles d = net_->routeDelay(
            op.time, node, home, op.write ? kSectorSize : kCtrlBytes);
        ctr.delayNet += d;
        delay += d;
    }
    const bool alloc = homeSideAllocates(policy_, true);
    EvictInfo ev_home;
    const AccessResult r3 =
        l2_[home].access(op.addr, op.write, alloc, &ev_home);
    countClass(node, home, home, r3 == AccessResult::Hit);
    handleEviction(op.time, home, ev_home);
    delay += cfg_.l2LatencyCycles;
    if (r3 != AccessResult::Hit) {
        const Cycles d = dramFor(home, op.addr).book(op.time, kSectorSize);
        ctr.delayDram += d;
        delay += d;
    }
    {
        const Cycles d = net_->routeDelay(
            op.time, home, node, op.write ? kCtrlBytes : kSectorSize);
        ctr.delayNet += d;
        delay += d;
    }
    op.done = op.time + delay;
    insertPendingSwept(node, op.addr, op.time, op.done);
}

void
MemorySystem::finishShardFetch(ShardOp &op)
{
    const NodeId node = op.node;
    const NodeId home = op.home;
    const bool req_alloc = cfg_.remoteCachingL2 || home == node;
    EvictInfo ev;
    const AccessResult r2 =
        l2_[node].access(op.addr, op.write, req_alloc, &ev);
    if (r2 == AccessResult::Hit) {
        countClass(node, home, node, true);
        op.done = op.time + op.partial + cfg_.l2LatencyCycles;
        return;
    }
    op.partial += cfg_.l2LatencyCycles;
    countClass(node, home, node, false);
    handleEviction(op.time, node, ev);
    if (home == node) {
        ++fetchLocal_[node];
        const Cycles d = dramFor(node, op.addr).book(op.time, kSectorSize);
        ctr_[node].delayDram += d;
        op.partial += d;
        op.done = op.time + op.partial;
        insertPendingSwept(node, op.addr, op.time, op.done);
        return;
    }
    ++fetchRemote_[node];
    execRemoteLeg(op);
}

void
MemorySystem::executeShardOps(std::vector<ShardOp *> &ops)
{
    // Canonical order: (issue time, requester node, issue seq). Lane seq
    // numbers are per-node issue order, so this order -- and with it
    // every booking, cache mutation and page-table fault below -- is a
    // pure function of the node-level simulation, independent of how
    // nodes were grouped into shards. That is what makes shards=2 and
    // shards=4 produce bit-identical metrics.
    std::sort(ops.begin(), ops.end(),
              [](const ShardOp *a, const ShardOp *b) {
                  if (a->time != b->time)
                      return a->time < b->time;
                  if (a->node != b->node)
                      return a->node < b->node;
                  return a->seq < b->seq;
              });
    for (ShardOp *op : ops) {
        switch (op->kind) {
        case ShardOpKind::Writeback:
            net_->routeDelay(op->time, op->node, op->home, op->bytes);
            dramFor(op->home, op->addr).book(op->time, op->bytes);
            op->done = op->time;
            break;
        case ShardOpKind::Untranslated: {
            // An earlier op this window may have mapped the page; the
            // serial-phase lookup (TLB fill allowed: we are exclusive
            // here) resolves either way, faulting on true first touch.
            Cycles fault_stall = 0;
            const NodeId mapped = pageTable_.lookup(op->addr);
            op->home = mapped != kInvalidNode
                           ? mapped
                           : uvm_.touch(pageTable_, op->addr, op->node,
                                        fault_stall);
            op->partial += fault_stall;
            finishShardFetch(*op);
            break;
        }
        case ShardOpKind::RemoteFetch:
            execRemoteLeg(*op);
            break;
        }
    }
}

} // namespace ladm
