/**
 * @file
 * The interface between workload models and the execution engine.
 *
 * A workload presents each threadblock as a set of warps; each warp
 * executes a sequence of *steps* (one step = one iteration of the kernel's
 * outermost loop for that warp). A step yields the coalesced 32-byte
 * sector accesses the warp issues in that iteration; the engine issues
 * them concurrently, waits for the slowest, charges the compute gap, and
 * advances to the next step.
 */

#ifndef LADM_SIM_TRACE_SOURCE_HH
#define LADM_SIM_TRACE_SOURCE_HH

#include <vector>

#include "common/types.hh"

namespace ladm
{

/** One coalesced sector access issued by a warp. */
struct MemAccess
{
    Addr addr = 0;      ///< any byte address inside the target sector
    bool write = false;
};

class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the accesses of step @p step of warp @p warp of threadblock
     * @p tb into @p out (cleared by the caller).
     *
     * @return true if the step exists (out may legitimately be empty --
     *         a compute-only iteration); false when the warp has retired
     *         all of its steps.
     */
    virtual bool warpStep(TbId tb, int warp, int64_t step,
                          std::vector<MemAccess> &out) = 0;

    /**
     * Average dynamic warp instructions represented by one step; used
     * only for the MPKI characterization stat (Table IV), not timing.
     */
    virtual double instrsPerStep() const { return 10.0; }
};

} // namespace ladm

#endif // LADM_SIM_TRACE_SOURCE_HH
