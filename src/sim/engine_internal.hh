/**
 * @file
 * Per-warp and per-SM bookkeeping shared by the kernel engine's two
 * event loops (the serial reference in sim/kernel_engine.cc and the
 * sharded conservative-PDES loop in sim/sharded_engine.cc). Internal to
 * the engine -- nothing outside sim/ should include this.
 */

#ifndef LADM_SIM_ENGINE_INTERNAL_HH
#define LADM_SIM_ENGINE_INTERNAL_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace ladm
{
namespace engine_detail
{

struct WarpState
{
    TbId tb = 0;
    int warpInTb = 0;
    SmId sm = 0;
    int64_t step = 0;
    /** Completion times of the last in-flight steps (pipeline window). */
    std::array<Cycles, 4> doneRing{};
};

struct SmState
{
    int residentTbs = 0;
    int freeWarpSlots = 0;
};

} // namespace engine_detail
} // namespace ladm

#endif // LADM_SIM_ENGINE_INTERNAL_HH
