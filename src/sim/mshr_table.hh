/**
 * @file
 * MshrTable: the per-node outstanding-miss table (sector address ->
 * data-ready cycle) behind MSHR merging.
 *
 * One probe of this table sits on every L1-missing access, so it is an
 * open-addressed, power-of-two hash table with linear probing and
 * backward-shift deletion (no tombstones: a delete compacts the probe
 * chain, so load never degrades from churn). Fibonacci hashing spreads
 * the sector-aligned keys.
 *
 * A slot's 64-bit tag packs a 16-bit generation above the 48-bit key
 * (addr + 1, so a zeroed slot can never match): a slot is live only if
 * its generation matches the table's. That makes clear() -- called at
 * every kernel-boundary cache flush -- O(1): bump the generation and
 * every resident entry becomes logically empty in place. The allocation
 * is retained at its high-water mark (bounded by kRetainCapacity), so a
 * table that ballooned during one kernel neither re-pays the grow/rehash
 * doubling ladder on the next one nor zeroes megabytes per flush. Peak
 * memory is unchanged -- the table reached that size while live anyway.
 *
 * Semantically this is exactly the unordered_map it replaces: find /
 * upsert / erase / size / clear plus an expiry sweep, and the owner
 * (MemorySystem) keeps the amortized sweep-watermark policy unchanged.
 */

#ifndef LADM_SIM_MSHR_TABLE_HH
#define LADM_SIM_MSHR_TABLE_HH

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ladm
{

namespace serial
{
class Writer;
class Reader;
} // namespace serial

class MshrTable
{
  public:
    MshrTable() { reset(kMinCapacity); }

    /** Data-ready cycle of an in-flight miss on @p addr, or nullptr. */
    Cycles *
    find(Addr addr)
    {
        const uint64_t tag = genBase_ | (addr + 1);
        for (size_t i = indexOf(addr);; i = (i + 1) & mask_) {
            if (slots_[i].tag == tag)
                return &slots_[i].ready;
            if (emptySlot(i))
                return nullptr;
        }
    }

    /**
     * Hint the CPU to pull @p addr's home slot into cache ahead of the
     * locate() that follows -- the table is megabytes, so the probe is
     * a near-certain cache miss whose latency this hides behind the L1
     * lookup. No architectural effect.
     */
    void
    prefetch(Addr addr) const
    {
        __builtin_prefetch(&slots_[indexOf(addr)]);
    }

    /**
     * Position handle from locate(): either the slot holding the key or
     * the empty slot terminating its probe chain. Valid only until the
     * next mutation (insert / erase / sweep / clear / grow).
     */
    struct Ref
    {
        size_t index;
        bool found;
    };

    /** Single-probe lookup whose result can later feed insertAt(). */
    Ref
    locate(Addr addr)
    {
        const uint64_t tag = genBase_ | (addr + 1);
        for (size_t i = indexOf(addr);; i = (i + 1) & mask_) {
            if (slots_[i].tag == tag)
                return {i, true};
            if (emptySlot(i))
                return {i, false};
        }
    }

    /** Completion cycle at a located slot (@p r must have found set). */
    Cycles readyAt(Ref r) const { return slots_[r.index].ready; }

    /**
     * Insert or overwrite @p addr using a Ref from locate() with no
     * intervening mutation -- the second probe of a find-then-insert
     * pair collapses into a slot store. Equivalent to insert(): an
     * overwrite reuses the found slot (same home bucket, so probe
     * chains stay intact), a fresh key fills the chain-ending empty
     * slot; only a load-factor grow falls back to a full re-probe.
     */
    void
    insertAt(Ref r, Addr addr, Cycles ready)
    {
        assert((addr >> kGenShift) == 0 && "address exceeds tag space");
        if (r.found) {
            slots_[r.index].ready = ready;
            return;
        }
        if ((size_ + 1) * 4 > slots_.size() * 3) { // load factor 3/4
            grow();
            insert(addr, ready);
            return;
        }
        slots_[r.index] = Slot{genBase_ | (addr + 1), ready};
        ++size_;
    }

    /** Insert or overwrite the completion cycle for @p addr. */
    void
    insert(Addr addr, Cycles ready)
    {
        assert((addr >> kGenShift) == 0 && "address exceeds tag space");
        if ((size_ + 1) * 4 > slots_.size() * 3) // load factor 3/4
            grow();
        const uint64_t tag = genBase_ | (addr + 1);
        for (size_t i = indexOf(addr);; i = (i + 1) & mask_) {
            if (slots_[i].tag == tag) {
                slots_[i].ready = ready;
                return;
            }
            if (emptySlot(i)) {
                slots_[i] = Slot{tag, ready};
                ++size_;
                return;
            }
        }
    }

    /** Remove @p addr if present, compacting its probe chain. */
    void
    erase(Addr addr)
    {
        const uint64_t tag = genBase_ | (addr + 1);
        for (size_t i = indexOf(addr);; i = (i + 1) & mask_) {
            if (slots_[i].tag == tag) {
                eraseSlot(i);
                return;
            }
            if (emptySlot(i))
                return;
        }
    }

    /** Drop every entry whose completion cycle is at or before @p now. */
    void
    sweepExpired(Cycles now)
    {
        // Backward-shift deletion can pull a later chain member into the
        // just-erased slot, so the cursor only advances when the slot
        // under it survives.
        for (size_t i = 0; i < slots_.size();) {
            if (!emptySlot(i) && slots_[i].ready <= now)
                eraseSlot(i);
            else
                ++i;
        }
    }

    /** Visit every (addr, ready) entry; @p f must not mutate the table. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (const Slot &s : slots_)
            if ((s.tag >> kGenShift) == gen_)
                f(static_cast<Addr>((s.tag & kAddrMask) - 1), s.ready);
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    clear()
    {
        // O(1): advancing the generation orphans every resident entry
        // in place. The allocation is retained (up to kRetainCapacity)
        // so the next kernel neither re-pays the grow ladder nor zeroes
        // the array. Capacity is invisible to lookups, so this is pure
        // performance policy.
        if (slots_.size() > kRetainCapacity) {
            reset(kRetainCapacity);
        } else if (++gen_ > kMaxGen) {
            gen_ = 1;
            std::fill(slots_.begin(), slots_.end(), Slot{});
        }
        genBase_ = static_cast<uint64_t>(gen_) << kGenShift;
        size_ = 0;
    }

    /** Checkpoint the slot array verbatim (snapshot/component_state.cc). */
    void saveState(serial::Writer &w) const;
    void loadState(serial::Reader &r);

  private:
    struct Slot
    {
        uint64_t tag = 0; ///< gen << 48 | (addr + 1); stale gen = empty
        Cycles ready = 0;
    };

    static constexpr size_t kMinCapacity = 1024; // power of two
    /** clear() keeps the allocation up to this many slots (32 MiB). */
    static constexpr size_t kRetainCapacity = size_t{1} << 21;
    static constexpr int kGenShift = 48;
    static constexpr uint64_t kAddrMask =
        (uint64_t{1} << kGenShift) - 1;
    static constexpr uint64_t kMaxGen = 0xFFFF;

    /** Live slots carry the current generation in their top tag bits. */
    bool
    emptySlot(size_t i) const
    {
        return (slots_[i].tag >> kGenShift) != gen_;
    }

    size_t
    indexOf(Addr addr) const
    {
        // Fibonacci hashing: multiply by 2^64/phi and keep the top bits.
        const uint64_t h = (addr >> 5) * UINT64_C(0x9E3779B97F4A7C15);
        return static_cast<size_t>(h >> shift_) & mask_;
    }

    void
    reset(size_t capacity)
    {
        slots_.assign(capacity, Slot{});
        mask_ = capacity - 1;
        shift_ = 1;
        while ((size_t(1) << (64 - shift_)) > capacity)
            ++shift_;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        const uint64_t old_gen = gen_;
        reset(old.size() * 2);
        size_ = 0;
        for (const Slot &s : old)
            if ((s.tag >> kGenShift) == old_gen)
                insert(static_cast<Addr>((s.tag & kAddrMask) - 1),
                       s.ready);
    }

    /** Backward-shift delete of the occupied slot at @p i. */
    void
    eraseSlot(size_t i)
    {
        size_t hole = i;
        for (size_t j = (i + 1) & mask_;; j = (j + 1) & mask_) {
            if (emptySlot(j))
                break;
            // j's natural position; move it into the hole iff the hole
            // lies within its probe path (cyclic distance test).
            const size_t nat = indexOf(
                static_cast<Addr>((slots_[j].tag & kAddrMask) - 1));
            if (((j - nat) & mask_) >= ((j - hole) & mask_)) {
                slots_[hole] = slots_[j];
                hole = j;
            }
        }
        slots_[hole] = Slot{};
        --size_;
    }

    std::vector<Slot> slots_;
    size_t mask_ = 0;
    int shift_ = 0;
    size_t size_ = 0;
    /** Current generation, >= 1 (a zeroed slot's gen 0 is never live). */
    uint64_t gen_ = 1;
    uint64_t genBase_ = uint64_t{1} << kGenShift;
};

} // namespace ladm

#endif // LADM_SIM_MSHR_TABLE_HH
