/**
 * @file
 * The sharded conservative-PDES kernel event loop (ROADMAP item 1).
 *
 * The serial engine (kernel_engine.cc) interleaves every warp of the
 * machine in one global min-heap. This loop instead partitions the
 * machine by NUMA node: each node gets a *lane* -- its own calendar
 * event queue, warp pool, SM occupancy state and MemorySystem shard
 * lane -- and lanes are grouped onto worker threads ("shards") by
 * sched/shard_map.hh. Threads synchronize on conservative time windows
 * (classic PDES): no cross-node transfer completes in less than the
 * minimum cross-node link latency L, so every lane may simulate
 * [W, W+L) without seeing the others. Cross-node memory work issued in
 * a window is deferred (MemorySystem::shardAccess) and executed in a
 * canonical shard-count-independent order at the window barrier
 * (MemorySystem::executeShardOps); the steps that waited on it resolve
 * right after, in the same window.
 *
 * Window loop, two barriers per window:
 *
 *   parallel P: each lane runs its events with time < W_end
 *               (node-exclusive state only -- lock-free)
 *   barrier A (serial): execute deferred cross-node ops, fold stats,
 *               tick the timeline
 *   parallel R: each lane resolves its deferred steps and schedules
 *               their successor events
 *   barrier B (serial): W_end' = max(W_end, min over lane heads) + L,
 *               or terminate when every lane is drained
 *
 * Timestamps stay honest throughout: a deferred op executes with its
 * original issue cycle, and a successor event scheduled below W_end
 * (possible, because a deferred step's completion may land early in
 * the window) simply runs in the NEXT window with its true timestamp.
 * Such "late" events give bandwidth servers a slightly different --
 * but equally valid -- simultaneity order than the serial engine, the
 * same class of divergence as the calendar queue's FIFO tie order; the
 * skew is bounded by one window. Results are therefore not bit-equal
 * to the serial heap reference, but they ARE bit-equal across shard
 * counts: every per-lane decision is lane-sequential and every
 * cross-lane decision is made in canonical node order, so grouping
 * lanes onto 2 or 4 threads cannot change any outcome. See
 * docs/performance.md.
 */

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "common/sim_error.hh"
#include "common/spin_barrier.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "obs/timeline.hh"
#include "sched/shard_map.hh"
#include "sim/engine_internal.hh"
#include "sim/event_queue.hh"
#include "sim/kernel_engine.hh"
#include "snapshot/snapshot.hh"

namespace ladm
{

namespace
{

using engine_detail::SmState;
using engine_detail::WarpState;

constexpr Cycles kNoEvent = std::numeric_limits<Cycles>::max();

/** A step that issued deferred ops and waits for them at the barrier. */
struct Waiter
{
    uint32_t warp;
    Cycles time;    ///< issue cycle of the step
    Cycles done;    ///< max completion of its inline (non-deferred) part
    uint32_t opOff; ///< first index into Lane::waiterOps
    uint32_t opCnt;
};

/**
 * One NUMA node's private slice of the event loop. Between barriers,
 * exactly one shard thread touches a lane; the barriers' acquire/release
 * ordering covers every cross-phase read (see common/spin_barrier.hh).
 */
struct alignas(64) Lane
{
    NodeId node = 0;
    SmId smLo = 0;
    size_t cursor = 0; ///< dispatch position in the node's TB queue

    /**
     * Calendar mode, not Heap: FIFO among equal times is reproducible
     * under the re-held insertion below, and per-lane queues are what
     * the calendar's dense-timestamp assumption wants.
     */
    EventQueue pq;
    /** One-slot lookahead buffer (EventQueue has no peek). */
    bool hasHeld = false;
    WarpEvent held{0, 0};

    std::vector<WarpState> warps;
    std::vector<uint32_t> freeWarps;
    std::vector<SmState> sms; ///< indexed by sm - smLo
    MemorySystem::ShardLane mlane;
    std::vector<Waiter> waiters;
    std::vector<uint32_t> waiterOps;
    std::vector<MemAccess> buf;

    // Per-lane run stats, folded serially (sums are order-independent).
    uint64_t warpSteps = 0;
    uint64_t sectorAccesses = 0;
    Cycles totalStepLatency = 0;
    Cycles maxStepLatency = 0;
    Cycles endCycle = 0;
    uint64_t lateEvents = 0;
    Histogram hist;

    Lane(Cycles bucket_width, uint64_t hist_width, size_t hist_buckets)
        : pq(EventQueue::Mode::Calendar, bucket_width),
          hist(hist_width, hist_buckets)
    {
    }

    Cycles headTime() const { return hasHeld ? held.time : kNoEvent; }
};

} // namespace

KernelRunStats
KernelEngine::runSharded(const LaunchDims &dims, TraceSource &trace,
                         const std::vector<TraceSource *> &shard_traces,
                         const std::vector<std::vector<TbId>> &node_queues,
                         Cycles start, bool resume)
{
    const int num_nodes = cfg_.numNodes();
    const int num_shards = maxShards_;
    const int warps_per_tb =
        static_cast<int>(ceilDiv(dims.threadsPerTb(), cfg_.warpSize));
    const int depth = std::clamp(cfg_.warpPipelineDepth, 1, 4);
    const Cycles gap = cfg_.computeGapCycles;
    const Cycles bucket = std::max<Cycles>(gap, 1);

    KernelRunStats stats;
    stats.startCycle = start;
    stats.endCycle = start;
    stats.tbCount = dims.numTbs();

    const ShardMap map = buildShardMap(cfg_, num_shards);

    std::vector<Lane> lanes;
    lanes.reserve(static_cast<size_t>(num_nodes));
    for (NodeId n = 0; n < num_nodes; ++n) {
        lanes.emplace_back(bucket, 8, 32);
        Lane &ln = lanes.back();
        ln.node = n;
        ln.mlane.node = n;
        SmId lo = 0;
        int count = 0;
        for (SmId s = 0; s < cfg_.totalSms(); ++s) {
            if (smNode_[s] == n) {
                if (count++ == 0)
                    lo = s;
            }
        }
        ln.smLo = lo;
        ln.sms.resize(static_cast<size_t>(count));
        for (auto &sm : ln.sms)
            sm.freeWarpSlots = cfg_.warpSlotsPerSm;
    }

    std::vector<int> tb_warps_left(dims.numTbs(), 0);

    auto admit = [&](Lane &ln, SmId sm, Cycles now) {
        const auto &q = node_queues[ln.node];
        SmState &st = ln.sms[static_cast<size_t>(sm - ln.smLo)];
        while (st.residentTbs < cfg_.maxResidentTbsPerSm &&
               st.freeWarpSlots >= warps_per_tb && ln.cursor < q.size()) {
            const TbId tb = q[ln.cursor++];
            ++st.residentTbs;
            st.freeWarpSlots -= warps_per_tb;
            tb_warps_left[tb] = warps_per_tb;
            for (int w = 0; w < warps_per_tb; ++w) {
                uint32_t slot;
                if (!ln.freeWarps.empty()) {
                    slot = ln.freeWarps.back();
                    ln.freeWarps.pop_back();
                } else {
                    slot = static_cast<uint32_t>(ln.warps.size());
                    ln.warps.emplace_back();
                }
                ln.warps[slot] = WarpState{tb, w, sm, 0, {}};
                ln.pq.push(now, slot);
            }
        }
    };

    // Same scoreboard rule as the serial loop: the step `depth`
    // iterations back gates the next issue. Returns the successor
    // event's cycle.
    auto completeStep = [&](Lane &ln, uint32_t slot, Cycles ev_time,
                            Cycles done) {
        WarpState &w = ln.warps[slot];
        const Cycles lat = done - ev_time;
        ln.totalStepLatency += lat;
        ln.maxStepLatency = std::max(ln.maxStepLatency, lat);
        ln.hist.sample(lat);
        w.doneRing[static_cast<size_t>(w.step % depth)] = done;
        const Cycles dep =
            w.doneRing[static_cast<size_t>((w.step + 1) % depth)];
        ++w.step;
        const Cycles next = std::max(ev_time + gap, dep + gap);
        ln.pq.push(next, slot);
        return next;
    };

    // Phase P: run one lane up to (exclusive) the window end.
    auto processWindow = [&](Lane &ln, TraceSource &tr, Cycles wend) {
        for (;;) {
            if (!ln.hasHeld) {
                if (ln.pq.empty())
                    break;
                ln.held = ln.pq.pop();
                ln.hasHeld = true;
            }
            if (ln.held.time >= wend)
                break;
            const WarpEvent ev = ln.held;
            ln.hasHeld = false;
            WarpState &w = ln.warps[ev.warp];

            ln.buf.clear();
            if (!tr.warpStep(w.tb, w.warpInTb, w.step, ln.buf)) {
                Cycles fin = ev.time;
                for (const Cycles d : w.doneRing)
                    fin = std::max(fin, d);
                SmState &st =
                    ln.sms[static_cast<size_t>(w.sm - ln.smLo)];
                ++st.freeWarpSlots;
                ln.freeWarps.push_back(ev.warp);
                if (--tb_warps_left[w.tb] == 0) {
                    --st.residentTbs;
                    admit(ln, w.sm, fin);
                }
                ln.endCycle = std::max(ln.endCycle, fin);
                continue;
            }

            ++ln.warpSteps;
            ln.sectorAccesses += ln.buf.size();
            Cycles done = ev.time;
            const auto op_off =
                static_cast<uint32_t>(ln.waiterOps.size());
            for (const auto &a : ln.buf) {
                const MemorySystem::ShardAccess r = mem_.shardAccess(
                    ln.mlane, ev.time, w.sm, a.addr, a.write);
                if (r.deferred())
                    ln.waiterOps.push_back(r.op);
                else
                    done = std::max(done, r.done);
            }
            const auto op_cnt =
                static_cast<uint32_t>(ln.waiterOps.size()) - op_off;
            if (op_cnt == 0)
                completeStep(ln, ev.warp, ev.time, done);
            else
                ln.waiters.push_back(
                    {ev.warp, ev.time, done, op_off, op_cnt});
        }
    };

    // Phase R: finish this window's deferred steps, then re-normalize
    // the held slot (a resolved step's successor may undercut it).
    auto resolve = [&](Lane &ln, Cycles wend) {
        for (const Waiter &wt : ln.waiters) {
            Cycles done = wt.done;
            for (uint32_t i = 0; i < wt.opCnt; ++i) {
                const uint32_t op = ln.waiterOps[wt.opOff + i];
                done = std::max(done, ln.mlane.ops[op].done);
            }
            if (completeStep(ln, wt.warp, wt.time, done) < wend)
                ++ln.lateEvents;
        }
        ln.waiters.clear();
        ln.waiterOps.clear();
        ln.mlane.clearWindow();
        if (ln.hasHeld) {
            ln.pq.push(ln.held.time, ln.held.warp);
            ln.hasHeld = false;
        }
        if (!ln.pq.empty()) {
            ln.held = ln.pq.pop();
            ln.hasHeld = true;
        }
    };

    // Shared window state: written only inside barrier serial sections,
    // read by every shard after the release -- the barrier's ordering
    // makes these plain fields race-free. Hoisted above the setup so
    // the checkpoint lambdas below can capture it.
    Cycles window_end = 0;
    bool run_windows = false;

    // Checkpoint image of the sharded loop, written only inside the
    // window-advance barrier's serial section (serial_b): every lane is
    // quiescent there -- resolve() cleared the waiters and the shard
    // lane's deferred-op outbox, and re-normalized the held slot -- so
    // per-lane state is closed. window_end is serialized post-advance:
    // the restored run's next window must batch deferred ops exactly as
    // the uninterrupted run's would.
    auto save_sharded = [&](serial::Writer &w) {
        w.u8(1); // loop kind: sharded PDES
        saveCumulative(w);
        w.u64(window_end);
        w.vec(tb_warps_left);
        w.u64(lanes.size());
        for (const Lane &ln : lanes) {
            w.u64(ln.cursor);
            w.u8(ln.hasHeld ? 1 : 0);
            w.u64(ln.held.time);
            w.u32(ln.held.warp);
            w.u64(ln.warps.size());
            for (const WarpState &ws : ln.warps) {
                w.i64(ws.tb);
                w.u32(static_cast<uint32_t>(ws.warpInTb));
                w.u32(static_cast<uint32_t>(ws.sm));
                w.i64(ws.step);
                for (const Cycles d : ws.doneRing)
                    w.u64(d);
            }
            w.vec(ln.freeWarps);
            w.u64(ln.sms.size());
            for (const SmState &s : ln.sms) {
                w.u32(static_cast<uint32_t>(s.residentTbs));
                w.u32(static_cast<uint32_t>(s.freeWarpSlots));
            }
            w.u64(ln.warpSteps);
            w.u64(ln.sectorAccesses);
            w.u64(ln.totalStepLatency);
            w.u64(ln.maxStepLatency);
            w.u64(ln.endCycle);
            w.u64(ln.lateEvents);
            ln.hist.saveState(w);
            ln.pq.saveState(w);
        }
    };

    if (resume) {
        ladm_require(ckpt_ && ckpt_->restorePending(),
                     "engine resume requested with no restore armed");
        serial::Reader &r = ckpt_->reader();
        r.openSection(snapshot::kEngine);
        if (r.u8() != 1) {
            throw SimError(
                SimError::Kind::Config, "checkpoint state mismatch",
                {{"checkpoint.engine", "serial",
                  "the checkpoint was written by the serial loop but "
                  "this run resolves to the sharded PDES loop",
                  "resume with the same --shards / --check / tracing "
                  "setup that produced the checkpoint"}});
        }
        loadCumulative(r);
        window_end = r.u64();
        r.vec(tb_warps_left);
        ladm_require(r.u64() == lanes.size(),
                     "checkpoint lane count mismatch");
        for (Lane &ln : lanes) {
            ln.cursor = r.u64();
            ln.hasHeld = r.u8() != 0;
            ln.held.time = r.u64();
            ln.held.warp = r.u32();
            ln.warps.resize(r.u64());
            for (WarpState &ws : ln.warps) {
                ws.tb = r.i64();
                ws.warpInTb = static_cast<int>(r.u32());
                ws.sm = static_cast<SmId>(r.u32());
                ws.step = r.i64();
                for (Cycles &d : ws.doneRing)
                    d = r.u64();
            }
            r.vec(ln.freeWarps);
            ladm_require(r.u64() == ln.sms.size(),
                         "checkpoint SM count mismatch");
            for (SmState &s : ln.sms) {
                s.residentTbs = static_cast<int>(r.u32());
                s.freeWarpSlots = static_cast<int>(r.u32());
            }
            ln.warpSteps = r.u64();
            ln.sectorAccesses = r.u64();
            ln.totalStepLatency = r.u64();
            ln.maxStepLatency = r.u64();
            ln.endCycle = r.u64();
            ln.lateEvents = r.u64();
            ln.hist.loadState(r);
            ln.pq.loadState(r);
        }
        ckpt_->finishRestore();
        ckpt_->noteResumed(window_end);
        // Mid-kernel checkpoints are only taken while events remain.
        run_windows = true;
    } else {
        // Serial setup: initial admission and the first window bound.
        for (Lane &ln : lanes) {
            for (size_t i = 0; i < ln.sms.size(); ++i)
                admit(ln, ln.smLo + static_cast<SmId>(i), start);
            if (!ln.pq.empty()) {
                ln.held = ln.pq.pop();
                ln.hasHeld = true;
            }
        }
        Cycles min_head = kNoEvent;
        for (const Lane &ln : lanes)
            min_head = std::min(min_head, ln.headTime());
        if (min_head != kNoEvent) {
            window_end = min_head + lookahead_;
            run_windows = true;
        }
    }

    // The cumulative totals already include each restored lane's
    // mid-kernel progress, so the bases subtract it back out (zero on a
    // fresh run): serial_a re-derives the totals as base + lane sums.
    uint64_t lane_ws = 0, lane_sa = 0, lane_late = 0;
    for (const Lane &ln : lanes) {
        lane_ws += ln.warpSteps;
        lane_sa += ln.sectorAccesses;
        lane_late += ln.lateEvents;
    }
    const uint64_t ws_base = warpStepsTotal_ - lane_ws;
    const uint64_t sa_base = sectorAccessesTotal_ - lane_sa;
    const uint64_t late_base = pdesLateEvents_ - lane_late;

    bool interrupted = false;
    Cycles interrupted_at = 0;

    if (run_windows) {
        bool finished = false;
        std::vector<MemorySystem::ShardOp *> all_ops;

        SpinBarrier bar_a(static_cast<uint32_t>(num_shards));
        SpinBarrier bar_b(static_cast<uint32_t>(num_shards));

        auto serial_a = [&] {
            all_ops.clear();
            for (Lane &ln : lanes)
                for (auto &op : ln.mlane.ops)
                    all_ops.push_back(&op);
            mem_.executeShardOps(all_ops);
            pdesDeferredOps_ += all_ops.size();
            ++pdesWindows_;
            uint64_t ws = 0, sa = 0;
            for (const Lane &ln : lanes) {
                ws += ln.warpSteps;
                sa += ln.sectorAccesses;
            }
            warpStepsTotal_ = ws_base + ws;
            sectorAccessesTotal_ = sa_base + sa;
            if (timeline_)
                timeline_->maybeTick(window_end);
        };

        auto serial_b = [&] {
            // Checkpoint timestamp: the boundary the lanes just drained
            // to. The serialized image still carries the *advanced*
            // window_end computed below, so the restored run partitions
            // deferred ops into the same windows as this one would.
            const Cycles boundary = window_end;
            Cycles head = kNoEvent;
            uint64_t late = 0;
            for (const Lane &ln : lanes) {
                head = std::min(head, ln.headTime());
                late += ln.lateEvents;
            }
            pdesLateEvents_ = late_base + late;
            if (head == kNoEvent)
                finished = true;
            else
                window_end = std::max(window_end, head) + lookahead_;
            if (ckpt_ && !finished && ckpt_->pending(boundary)) {
                if (ckpt_->capture(boundary, save_sharded)) {
                    // Stop requested: end the window loop on every
                    // shard; the unwinding throw happens on the caller
                    // thread after the pool drains (workers must not
                    // throw).
                    interrupted = true;
                    interrupted_at = boundary;
                    finished = true;
                }
            }
        };

        auto shardLoop = [&](int s) {
            TraceSource &tr =
                s == 0 ? trace
                       : *shard_traces[static_cast<size_t>(s - 1)];
            const auto &my_nodes =
                map.nodesOfShard[static_cast<size_t>(s)];
            uint64_t wait_ns = 0;
            using clock = std::chrono::steady_clock;
            for (;;) {
                const Cycles wend = window_end;
                for (const NodeId n : my_nodes)
                    processWindow(lanes[static_cast<size_t>(n)], tr,
                                  wend);
                const auto t0 = clock::now();
                bar_a.arriveAndWait(serial_a);
                const auto t1 = clock::now();
                for (const NodeId n : my_nodes)
                    resolve(lanes[static_cast<size_t>(n)], wend);
                const auto t2 = clock::now();
                bar_b.arriveAndWait(serial_b);
                const auto t3 = clock::now();
                wait_ns += static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        (t1 - t0) + (t3 - t2))
                        .count());
                if (finished)
                    break;
            }
            pdesBarrierNs_[static_cast<size_t>(s)] += wait_ns;
        };

        // Workers must not throw (ThreadPool contract) and cannot: all
        // input validation ran in run() before dispatch, and the loop
        // body allocates only through vectors sized by the workload.
        ThreadPool pool(num_shards - 1);
        for (int s = 1; s < num_shards; ++s)
            pool.submit([&shardLoop, s] { shardLoop(s); });
        shardLoop(0);
        pool.wait();
    }

    if (interrupted)
        throw snapshot::Interrupted(ckpt_->outPath(), interrupted_at);

    for (const Lane &ln : lanes) {
        stats.warpSteps += ln.warpSteps;
        stats.sectorAccesses += ln.sectorAccesses;
        stats.totalStepLatency += ln.totalStepLatency;
        stats.maxStepLatency =
            std::max(stats.maxStepLatency, ln.maxStepLatency);
        stats.endCycle = std::max(stats.endCycle, ln.endCycle);
        if (stepLatencyHist_)
            stepLatencyHist_->merge(ln.hist);
    }
    stats.warpInstrs =
        static_cast<double>(stats.warpSteps) * trace.instrsPerStep();
    warpStepsTotal_ = ws_base + stats.warpSteps;
    sectorAccessesTotal_ = sa_base + stats.sectorAccesses;
    ++kernelsRun_;
    tbsDispatchedTotal_ += static_cast<uint64_t>(stats.tbCount);
    return stats;
}

} // namespace ladm
