/**
 * @file
 * Fig. 11: the RONCE case study. Break the L2 traffic of random_loc (low
 * remote reuse -- RONCE helps) and SQ-GEMM (high remote reuse -- RONCE
 * hurts) into LOCAL-LOCAL / LOCAL-REMOTE / REMOTE-LOCAL classes and
 * report each class's share and hit rate under RTWICE vs RONCE.
 */

#include "bench_util.hh"

using namespace ladm;
using namespace ladm::bench;

namespace
{

void
caseStudy(const std::string &workload, const RunMetrics *results)
{
    std::printf("\n--- %s\n", workload.c_str());
    std::printf("%-8s | %22s | %22s | %10s\n", "policy",
                "traffic share (LL/LR/RL)", "hit rate (LL/LR/RL)",
                "cycles");
    for (const Policy p : {Policy::LaspRtwice, Policy::LaspRonce}) {
        const RunMetrics &m = *results++;
        const double total = static_cast<double>(
            m.classAccesses[0] + m.classAccesses[1] + m.classAccesses[2]);
        std::printf("%-8s | %6.1f%% %6.1f%% %6.1f%% | %6.1f%% %6.1f%% "
                    "%6.1f%% | %10llu\n",
                    p == Policy::LaspRtwice ? "RTWICE" : "RONCE",
                    100.0 * m.classAccesses[0] / total,
                    100.0 * m.classAccesses[1] / total,
                    100.0 * m.classAccesses[2] / total,
                    100.0 * m.classHitRate[0], 100.0 * m.classHitRate[1],
                    100.0 * m.classHitRate[2],
                    static_cast<unsigned long long>(m.cycles));
        std::fflush(stdout);
    }
}

} // namespace

int
benchMain(int argc, char **argv)
{
    const int jobs = parseJobsFlag(argc, argv);

    printHeaderLine("Fig. 11 -- cache-remote-once case study "
                    "(L2 traffic classes)");

    const SystemConfig multi = presets::multiGpu4x4();
    std::vector<core::SweepCell> cells;
    for (const char *w : {"Random-loc", "SQ-GEMM"}) {
        cells.push_back(cell(w, Policy::LaspRtwice, multi));
        cells.push_back(cell(w, Policy::LaspRonce, multi));
    }
    const std::vector<RunMetrics> results = runGrid(cells, jobs);

    // (a) low-reuse ITL workload: bypassing REMOTE-LOCAL frees home L2
    //     capacity for local traffic.
    caseStudy("Random-loc", &results[0]);
    // (b) high-reuse RCL workload: the home-side copy serves inter-GPU
    //     sharing, so bypassing it hurts.
    caseStudy("SQ-GEMM", &results[2]);

    std::printf("\npaper shape: random_loc REMOTE-LOCAL is a large, "
                "low-hit-rate class whose\n  bypass raises the other "
                "classes' hit rates; SQ-GEMM's REMOTE-LOCAL is\n  "
                "smaller but hits often, so RONCE costs performance "
                "there.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    // snapshot::runMain maps a graceful SIGINT/SIGTERM stop (checkpoint
    // flushed at the engine's safe point) to exit 75 and lets the
    // telemetry atexit finalizer publish partial sinks.
    return ladm::snapshot::runMain([&] { return benchMain(argc, argv); });
}
