/**
 * @file
 * Table I: which access patterns each technique captures. Each pattern
 * is probed with the workload that isolates it; a technique "captures"
 * the pattern when its off-chip traffic stays low (or, for the
 * input-size test, when it picks the right scheduler) on the 4x4
 * machine.
 */

#include "bench_util.hh"

using namespace ladm;
using namespace ladm::bench;

namespace
{

struct PatternProbe
{
    std::string pattern;
    std::string workload;
    /** Captured iff off-chip% below this. */
    double threshold;
};

} // namespace

int
benchMain(int argc, char **argv)
{
    const int jobs = parseJobsFlag(argc, argv);

    printHeaderLine("Table I -- which technique captures which pattern "
                    "(measured off-chip traffic)");

    const SystemConfig multi = presets::multiGpu4x4();
    const std::vector<std::pair<std::string, Policy>> policies = {
        {"Batch+FT", Policy::BatchFt},
        {"Kernel-wide", Policy::KernelWide},
        {"H-CODA", Policy::Coda},
        {"LADM", Policy::Ladm},
    };
    // Thresholds are generous: "captured" means the traffic the pattern
    // would otherwise generate is mostly gone.
    const std::vector<PatternProbe> probes = {
        {"Page alignment", "VecAdd", 10.0},
        {"TB-stride aware", "Histo-final", 25.0},
        {"Row sharing", "CONV", 25.0},
        {"Col sharing", "FWT-k2", 25.0},
        {"Adjacency (stencil)", "SRAD", 25.0},
        {"Intra-thread loc", "Kmeans-noTex", 10.0},
    };

    std::vector<core::SweepCell> cells;
    for (const auto &probe : probes)
        for (const auto &[pname, p] : policies)
            cells.push_back(cell(probe.workload, p, multi));
    const std::vector<RunMetrics> results = runGrid(cells, jobs);

    std::printf("%-22s", "pattern");
    for (const auto &[name, p] : policies)
        std::printf(" %13s", name.c_str());
    std::printf("\n");

    size_t idx = 0;
    for (const auto &probe : probes) {
        std::printf("%-22s", probe.pattern.c_str());
        for (const auto &[pname, p] : policies) {
            const RunMetrics &m = results[idx++];
            const bool captured = m.offChipPct < probe.threshold;
            std::printf("   %s (%5.1f%%)", captured ? "Y" : "n",
                        m.offChipPct);
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    // Input-size awareness: with B the larger matrix the column binding
    // must win; only LADM adapts its scheduler to the input.
    std::printf("%-22s", "Input size aware");
    {
        auto w = workloads::makeWorkload("Alexnet-FC-2", benchScale());
        for (const auto &[pname, p] : policies) {
            auto bundle = makeBundle(p);
            MallocRegistry reg;
            PageTable pt(multi.pageSize);
            w = workloads::makeWorkload("Alexnet-FC-2", benchScale());
            w->allocateAll(reg);
            const auto plan =
                bundle->prepare(w->kernel(), w->dims(), w->argPcs(), reg,
                                pt, multi);
            const bool adapts = plan.scheduler->name() == "col-binding";
            std::printf("   %s (%7s)", adapts ? "Y" : "n",
                        plan.scheduler->name().substr(0, 7).c_str());
        }
        std::printf("\n");
    }

    std::printf("\npaper's Table I: LADM captures every row; Batch+FT "
                "only strides+ITL;\n  kernel-wide only alignment, row "
                "sharing, adjacency; CODA only alignment.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    // snapshot::runMain maps a graceful SIGINT/SIGTERM stop (checkpoint
    // flushed at the engine's safe point) to exit 75 and lets the
    // telemetry atexit finalizer publish partial sinks.
    return ladm::snapshot::runMain([&] { return benchMain(argc, argv); });
}
