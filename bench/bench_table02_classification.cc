/**
 * @file
 * Table II: the index-analysis classification itself. Runs Algorithm 1
 * over the canonical index equations and prints the detected locality
 * type plus the scheduling/placement/caching actions LASP derives --
 * the same rows as the paper's Table II.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "compiler/index_analysis.hh"
#include "snapshot/snapshot.hh"
#include "kernel/expr.hh"

using namespace ladm;
using namespace ladm::dsl;

namespace
{

struct Row
{
    std::string label;
    Expr index;
    bool grid2d;
};

const char *
schedulingAction(LocalityType t)
{
    switch (t) {
      case LocalityType::NoLocality: return "Align-aware";
      case LocalityType::RowHoriz:
      case LocalityType::RowVert: return "Row-binding";
      case LocalityType::ColHoriz:
      case LocalityType::ColVert: return "Col-binding";
      case LocalityType::IntraThread:
      case LocalityType::Unclassified: return "Kernel-wide";
    }
    return "?";
}

const char *
placementAction(LocalityType t)
{
    switch (t) {
      case LocalityType::NoLocality: return "Stride-aware";
      case LocalityType::RowHoriz:
      case LocalityType::ColHoriz: return "Row-based";
      case LocalityType::RowVert:
      case LocalityType::ColVert: return "Col-based";
      case LocalityType::IntraThread:
      case LocalityType::Unclassified: return "Kernel-wide";
    }
    return "?";
}

const char *
cachePolicy(LocalityType t)
{
    return t == LocalityType::IntraThread ? "RONCE" : "RTWICE";
}

} // namespace

int
benchMain()
{
    std::printf("Table II -- index equations, detected locality types, "
                "and LASP actions\n\n");

    const std::vector<Row> rows = {
        {"loopInv(bx,by) + stride*m  (no locality, strided)",
         (by * bdy + ty) * (gdx * bdx) + bx * bdx + tx +
             m * (gdx * bdx) * (gdy * bdy),
         true},
        {"loopInv(by) + loopVar(m)   (row-loc, horiz shared)",
         (by * 16 + ty) * (gdx * bdx) + m * 16 + tx, true},
        {"loopInv(bx) + loopVar(m)   (col-loc, horiz shared)",
         bx * 1024 + tx + m * bdx, true},
        {"loopInv(by) + loopVar(m,gDimx)  (row-loc, vert shared)",
         by * 16 + ty + m * gdx * bdx, true},
        {"loopInv(bx) + loopVar(m,gDimx)  (col-loc, vert shared)",
         (m * 16 + ty) * (gdx * bdx) + bx * 16 + tx, true},
        {"loopVar(m) = m             (intra-thread locality)",
         (bx * bdx + tx) * 16 + m, false},
        {"X[Y[tid]]                  (unclassified)",
         bx * bdx + tx + Expr::dataDep(), false},
    };

    std::printf("%-3s %-52s %-12s %-12s %-12s %-7s\n", "row",
                "index equation family", "type", "scheduling",
                "placement", "cache");
    for (const auto &r : rows) {
        const auto c = classifyAccess(r.index, r.grid2d);
        std::printf("%-3d %-52s %-12s %-12s %-12s %-7s\n",
                    tableRow(c.type), r.label.c_str(), toString(c.type),
                    schedulingAction(c.type), placementAction(c.type),
                    cachePolicy(c.type));
    }

    std::printf("\nexpected (paper): rows 1-7 in this order -- NL / "
                "RCL-row-h / RCL-col-h /\n  RCL-row-v / RCL-col-v / ITL "
                "/ unclassified.\n");
    return 0;
}

int
main()
{
    // snapshot::runMain maps a graceful SIGINT/SIGTERM stop (checkpoint
    // flushed at the engine's safe point) to exit 75 and lets the
    // telemetry atexit finalizer publish partial sinks.
    return ladm::snapshot::runMain([&] { return benchMain(); });
}
