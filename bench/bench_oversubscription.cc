/**
 * @file
 * Section VI extension: UVM oversubscription. When the working set
 * exceeds device capacity, LASP's proactive placement streams pages in
 * at host-link bandwidth while demand paging eats a fixed fault stall
 * per page ("LASP can be extended to efficiently support oversubscribed
 * memory by proactively placing the next page where it is predicted to
 * be accessed, avoiding page-faulting overheads").
 */

#include "bench_util.hh"

using namespace ladm;
using namespace ladm::bench;

int
main()
{
    printHeaderLine("UVM oversubscription -- proactive LASP prefetch vs "
                    "reactive demand paging");

    std::printf("%-14s %-10s %12s %12s %12s %12s\n", "workload",
                "capacity", "ft cycles", "ladm cycles", "ladm/ft",
                "demand faults (ft)");

    for (const std::string name : {"VecAdd", "ScalarProd", "CONV"}) {
        // Size device memory so the workload oversubscribes ~2x.
        auto probe = workloads::makeWorkload(name, benchScale());
        Bytes input = 0;
        for (const auto &a : probe->allocs())
            input += a.size;

        SystemConfig cfg = presets::multiGpu4x4();
        cfg.hbmCapacityPerNode = input / (2 * cfg.numNodes());
        cfg.name = "multi-gpu-4x4-oversub";

        const auto ft = run(name, Policy::BatchFt, cfg);
        const auto la = run(name, Policy::Ladm, cfg);

        char cap[16];
        std::snprintf(cap, sizeof(cap), "%.2f MB/n",
                      static_cast<double>(cfg.hbmCapacityPerNode) /
                          (1 << 20));
        std::printf("%-14s %-10s %12llu %12llu %11.2fx %12llu\n",
                    name.c_str(), cap,
                    static_cast<unsigned long long>(ft.cycles),
                    static_cast<unsigned long long>(la.cycles),
                    static_cast<double>(ft.cycles) / la.cycles,
                    static_cast<unsigned long long>(ft.uvmFaults));
        std::fflush(stdout);
    }

    std::printf("\nshape: with proactive placement every host transfer "
                "is a prefetch (bandwidth\n  only); demand paging adds "
                "a 20us-class stall per faulted page.\n");
    return 0;
}
