/**
 * @file
 * Section VI extension: UVM oversubscription. When the working set
 * exceeds device capacity, LASP's proactive placement streams pages in
 * at host-link bandwidth while demand paging eats a fixed fault stall
 * per page ("LASP can be extended to efficiently support oversubscribed
 * memory by proactively placing the next page where it is predicted to
 * be accessed, avoiding page-faulting overheads").
 */

#include "bench_util.hh"

using namespace ladm;
using namespace ladm::bench;

int
benchMain(int argc, char **argv)
{
    const int jobs = parseJobsFlag(argc, argv);

    printHeaderLine("UVM oversubscription -- proactive LASP prefetch vs "
                    "reactive demand paging");

    const std::vector<std::string> names = {"VecAdd", "ScalarProd",
                                            "CONV"};
    // Size device memory so each workload oversubscribes ~2x.
    std::vector<SystemConfig> cfgs;
    std::vector<core::SweepCell> cells;
    for (const std::string &name : names) {
        auto probe = workloads::makeWorkload(name, benchScale());
        Bytes input = 0;
        for (const auto &a : probe->allocs())
            input += a.size;

        SystemConfig cfg = presets::multiGpu4x4();
        cfg.hbmCapacityPerNode = input / (2 * cfg.numNodes());
        cfg.name = "multi-gpu-4x4-oversub";
        cfgs.push_back(cfg);
        cells.push_back(cell(name, Policy::BatchFt, cfg));
        cells.push_back(cell(name, Policy::Ladm, cfg));
    }
    const std::vector<RunMetrics> results = runGrid(cells, jobs);

    std::printf("%-14s %-10s %12s %12s %12s %12s\n", "workload",
                "capacity", "ft cycles", "ladm cycles", "ladm/ft",
                "demand faults (ft)");

    for (size_t n = 0; n < names.size(); ++n) {
        const std::string &name = names[n];
        const SystemConfig &cfg = cfgs[n];
        const RunMetrics &ft = results[2 * n];
        const RunMetrics &la = results[2 * n + 1];

        char cap[16];
        std::snprintf(cap, sizeof(cap), "%.2f MB/n",
                      static_cast<double>(cfg.hbmCapacityPerNode) /
                          (1 << 20));
        std::printf("%-14s %-10s %12llu %12llu %11.2fx %12llu\n",
                    name.c_str(), cap,
                    static_cast<unsigned long long>(ft.cycles),
                    static_cast<unsigned long long>(la.cycles),
                    static_cast<double>(ft.cycles) / la.cycles,
                    static_cast<unsigned long long>(ft.uvmFaults));
        std::fflush(stdout);
    }

    std::printf("\nshape: with proactive placement every host transfer "
                "is a prefetch (bandwidth\n  only); demand paging adds "
                "a 20us-class stall per faulted page.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    // snapshot::runMain maps a graceful SIGINT/SIGTERM stop (checkpoint
    // flushed at the engine's safe point) to exit 75 and lets the
    // telemetry atexit finalizer publish partial sinks.
    return ladm::snapshot::runMain([&] { return benchMain(argc, argv); });
}
