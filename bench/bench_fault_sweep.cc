/**
 * @file
 * Resilience sweep: LADM under progressive NUMA-fabric faults.
 *
 * Runs the full LADM bundle on the hierarchical 4x4 machine while a
 * FaultPlan (config/system_config.hh faultSpec) degrades the fabric in
 * five steps: healthy, a half-bandwidth inter-GPU link, a quarter link
 * plus a half ring, a severe scenario that also drops one chiplet's HBM
 * stack, and a severed link with two dead chiplets. Each scenario runs
 * twice -- with graceful degradation (page re-homing + TB re-binding,
 * SystemConfig::faultDegradation) on and off -- so the table is the
 * resilience curve: slowdown vs the healthy machine as faults mount.
 *
 * Expected shape: slowdown grows monotonically with fault severity for
 * both modes, and once chiplets fail the degradation-aware mode wins
 * decisively -- it pays a one-time page-rescue cost per page instead of
 * the 64x maintenance-path crawl on every access to a dead stack.
 */

#include "bench_util.hh"

using namespace ladm;
using namespace ladm::bench;

namespace
{

struct Scenario
{
    std::string name;
    std::string spec;
    bool chipletsFail;
};

} // namespace

int
benchMain(int argc, char **argv)
{
    const int jobs = parseJobsFlag(argc, argv);

    printHeaderLine("Fault sweep -- LADM resilience under fabric "
                    "degradation (multi-gpu-4x4)");

    const std::vector<Scenario> scenarios = {
        {"healthy", "", false},
        {"link-0-1 @50%", "link:0-1:0.5@0", false},
        {"+ring-0 @50%", "link:0-1:0.25@0;ring:0:0.5@0", false},
        {"+chiplet5 dead", "link:0-1:0.125@0;ring:0:0.25@0;chiplet:5:fail@0",
         true},
        {"severed +2 dead",
         "link:0-1:sever@0;chiplet:5:fail@0;chiplet:6:fail@0", true},
    };

    const std::vector<std::string> names = {"VecAdd", "SRAD", "CONV",
                                            "SQ-GEMM", "PageRank"};

    CsvSink csv("fault_sweep");
    BenchJsonSink sink("fault_sweep");

    // Grid: scenario-major, then degradation mode, then workload, so the
    // print loop below walks the results in submission order.
    std::vector<core::SweepCell> cells;
    for (const Scenario &sc : scenarios) {
        for (const bool degrade : {true, false}) {
            for (const auto &w : names) {
                SystemConfig cfg = presets::multiGpu4x4();
                cfg.faultSpec = sc.spec;
                cfg.faultDegradation = degrade;
                if (!sc.spec.empty())
                    cfg.name += degrade ? "+faults+degrade" : "+faults";
                cells.push_back(cell(w, Policy::Ladm, cfg));
            }
        }
    }
    const std::vector<RunMetrics> results = runGrid(cells, jobs);
    for (const RunMetrics &m : results) {
        csv.add(m);
        sink.add(m);
    }

    // Healthy-machine reference cycles per workload (degradation flag is
    // irrelevant when the plan is empty; use the first block).
    std::vector<double> healthy;
    for (size_t i = 0; i < names.size(); ++i)
        healthy.push_back(static_cast<double>(results[i].cycles));

    std::printf("%-18s %14s %14s %12s %14s\n", "scenario",
                "slowdown(deg)", "slowdown(off)", "rehomed",
                "crawl-accesses");

    size_t idx = 0;
    std::vector<double> on_curve, off_curve;
    uint64_t total_rehomed = 0;
    for (const Scenario &sc : scenarios) {
        double slow[2] = {0, 0};
        uint64_t rehomed = 0, crawls = 0;
        for (int mode = 0; mode < 2; ++mode) { // 0 = degrade, 1 = off
            std::vector<double> rel;
            for (size_t i = 0; i < names.size(); ++i) {
                const RunMetrics &m = results[idx++];
                rel.push_back(static_cast<double>(m.cycles) / healthy[i]);
                if (mode == 0)
                    rehomed += m.rehomedPages;
                else
                    crawls += m.failedNodeAccesses;
            }
            slow[mode] = geomean(rel);
        }
        on_curve.push_back(slow[0]);
        off_curve.push_back(slow[1]);
        total_rehomed += rehomed;
        std::printf("%-18s %14.3f %14.3f %12llu %14llu\n",
                    sc.name.c_str(), slow[0], slow[1],
                    static_cast<unsigned long long>(rehomed),
                    static_cast<unsigned long long>(crawls));
        std::fflush(stdout);
    }

    // Shape checks the sweep is expected to reproduce.
    bool monotone = true;
    for (size_t i = 1; i < on_curve.size(); ++i)
        if (on_curve[i] + 1e-9 < on_curve[i - 1])
            monotone = false;
    bool degrade_wins = true;
    for (size_t i = 0; i < scenarios.size(); ++i)
        if (scenarios[i].chipletsFail && on_curve[i] >= off_curve[i])
            degrade_wins = false;

    std::printf("\nshape: degradation curve monotone: %s; "
                "graceful degradation wins at chiplet failures: %s; "
                "%llu pages rescued\n",
                monotone ? "yes" : "NO", degrade_wins ? "yes" : "NO",
                static_cast<unsigned long long>(total_rehomed));
    std::printf("paper shape: locality-aware management degrades "
                "gracefully -- a one-time page rescue per dead stack "
                "instead of a per-access maintenance-path crawl.\n");
    return (monotone && degrade_wins) ? 0 : 1;
}

int
main(int argc, char **argv)
{
    // snapshot::runMain maps a graceful SIGINT/SIGTERM stop (checkpoint
    // flushed at the engine's safe point) to exit 75 and lets the
    // telemetry atexit finalizer publish partial sinks.
    return ladm::snapshot::runMain([&] { return benchMain(argc, argv); });
}
