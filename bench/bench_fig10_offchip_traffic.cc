/**
 * @file
 * Fig. 10: percentage of memory traffic that leaves the node, for
 * H-CODA, LASP+RTWICE, LASP+RONCE, and LADM on all 27 workloads.
 */

#include "bench_util.hh"

using namespace ladm;
using namespace ladm::bench;

int
benchMain(int argc, char **argv)
{
    const int jobs = parseJobsFlag(argc, argv);

    printHeaderLine("Fig. 10 -- off-chip traffic percentage "
                    "(multi-GPU 4x4, Table III)");

    const SystemConfig multi = presets::multiGpu4x4();
    CsvSink csv("fig10");
    BenchJsonSink json("fig10");

    std::vector<core::SweepCell> cells;
    for (const auto &[section, names] : workloadSections()) {
        for (const auto &name : names) {
            cells.push_back(cell(name, Policy::Coda, multi));
            cells.push_back(cell(name, Policy::LaspRtwice, multi));
            cells.push_back(cell(name, Policy::LaspRonce, multi));
            cells.push_back(cell(name, Policy::Ladm, multi));
        }
    }
    const std::vector<RunMetrics> results = runGrid(cells, jobs);

    std::printf("%-14s %9s %9s %9s %9s\n", "workload", "H-CODA",
                "LASP+RT", "LASP+RO", "LADM");

    double sum_hc = 0.0, sum_la = 0.0;
    uint64_t fetch_hc = 0, fetch_la = 0, remote_hc = 0, remote_la = 0;
    std::vector<double> per_workload_cut;
    int n = 0;
    size_t i = 0;
    for (const auto &[section, names] : workloadSections()) {
        std::printf("--- %s\n", section.c_str());
        for (const auto &name : names) {
            const RunMetrics &hc = results[i++];
            const RunMetrics &rt = results[i++];
            const RunMetrics &ro = results[i++];
            const RunMetrics &la = results[i++];
            for (const auto *m : {&hc, &rt, &ro, &la}) {
                csv.add(*m);
                json.add(*m);
            }
            std::printf("%-14s %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
                        name.c_str(), hc.offChipPct, rt.offChipPct,
                        ro.offChipPct, la.offChipPct);
            std::fflush(stdout);
            sum_hc += hc.offChipPct;
            sum_la += la.offChipPct;
            fetch_hc += hc.fetchLocal + hc.fetchRemote;
            remote_hc += hc.fetchRemote;
            fetch_la += la.fetchLocal + la.fetchRemote;
            remote_la += la.fetchRemote;
            if (la.fetchRemote > 0 && hc.fetchRemote > 0)
                per_workload_cut.push_back(
                    static_cast<double>(hc.fetchRemote) / la.fetchRemote);
            ++n;
        }
    }

    std::printf("\nMEAN off-chip  H-CODA: %.1f%%   LADM: %.1f%%\n",
                sum_hc / n, sum_la / n);
    std::printf("TOTAL remote fetches  H-CODA: %llu   LADM: %llu  "
                "(aggregate reduction %.1fx)\n",
                static_cast<unsigned long long>(remote_hc),
                static_cast<unsigned long long>(remote_la),
                remote_la ? static_cast<double>(remote_hc) / remote_la
                          : 0.0);
    std::printf("GEOMEAN per-workload remote-traffic reduction: %.1fx "
                "(paper: ~4x)\n",
                geomean(per_workload_cut));
    return 0;
}

int
main(int argc, char **argv)
{
    // snapshot::runMain maps a graceful SIGINT/SIGTERM stop (checkpoint
    // flushed at the engine's safe point) to exit 75 and lets the
    // telemetry atexit finalizer publish partial sinks.
    return ladm::snapshot::runMain([&] { return benchMain(argc, argv); });
}
