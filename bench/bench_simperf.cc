/**
 * @file
 * Simulator-throughput benchmark: how many warp steps and sector
 * accesses per second of wall time the simulator itself sustains.
 *
 * Unlike every other bench (which reports *simulated* metrics), this one
 * tracks the speed of the simulation loop -- the ceiling on how many
 * grid points, scales and seeds every other harness can afford. Three
 * baskets stress the per-access hot paths differently:
 *
 *   interleaved  page-granularity round-robin placement (baseline-rr):
 *                the worst case for the page table -- every page has a
 *                different home than its neighbours
 *   lasp         the full LADM runtime: segment-shaped placements from
 *                LASP plus CRB scheduling
 *   first-touch  batch+ft: no proactive placement, every page resolves
 *                through a UVM fault (exception-overlay heavy)
 *
 * Output: one row per basket plus a total, and BENCH_simperf.json (schema
 * ladm-simperf-v1). Runs are strictly serial -- wall-clock throughput of
 * one worker is the tracked number; --jobs is accepted but ignored.
 *
 * Flags:
 *   --repeats N          run the basket N times, keep the fastest pass
 *                        (default 3; CI quick mode uses 1)
 *   --baseline PATH      compare against the warp_steps_per_sec recorded
 *                        in an earlier BENCH_simperf.json
 *   --max-regression F   with --baseline: exit 1 if total throughput
 *                        drops below (1-F) x baseline (default 0.25)
 */

#include <chrono>
#include <cstring>
#include <iterator>

#include "bench_util.hh"
#include "telemetry/session.hh"

using namespace ladm;
using namespace ladm::bench;

namespace
{

struct Basket
{
    std::string name;
    std::vector<core::SweepCell> cells;
};

struct BasketResult
{
    std::string name;
    uint64_t warpSteps = 0;
    uint64_t sectorAccesses = 0;
    uint64_t runs = 0;
    double seconds = 0.0;

    double wsps() const { return safeRate(warpSteps, seconds); }
    double saps() const { return safeRate(sectorAccesses, seconds); }
};

/** Wall-clock one serial pass over the basket's cells. */
BasketResult
runBasket(const Basket &b, int repeats)
{
    BasketResult best;
    best.name = b.name;
    best.seconds = 0.0;
    for (int r = 0; r < std::max(1, repeats); ++r) {
        BasketResult pass;
        pass.name = b.name;
        const auto t0 = std::chrono::steady_clock::now();
        for (const core::SweepCell &c : b.cells) {
            auto w = workloads::makeWorkload(c.workload, c.scale);
            auto bundle = makeBundle(c.policy);
            const RunMetrics m =
                runExperiment(*w, *bundle, c.cfg, c.launches);
            pass.warpSteps += m.warpSteps;
            pass.sectorAccesses += m.sectorAccesses;
            ++pass.runs;
        }
        const auto t1 = std::chrono::steady_clock::now();
        pass.seconds =
            std::chrono::duration<double>(t1 - t0).count();
        if (r == 0 || pass.wsps() > best.wsps())
            best = pass;
    }
    return best;
}

/**
 * Minimal extraction of "key": value from a prior BENCH_simperf.json.
 * The document is machine-written by JsonWriter, so a substring scan is
 * exact enough; returns a negative value when the key is absent.
 */
double
extractJsonNumber(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return -1.0;
    return std::atof(text.c_str() + pos + needle.size());
}

} // namespace

int
main(int argc, char **argv)
{
    parseJobsFlag(argc, argv); // accepted for uniformity; runs are serial

    // Observability flags (--timeline-out / --obs-attribution /
    // --obs-heatmap ...) so A/B overhead runs of the same binary work:
    // obs off is the tracked configuration, obs on measures its own cost.
    telemetry::session().configure(
        TelemetryOptions::parseArgs(argc, argv));

    int repeats = 3;
    std::string baseline_path;
    double max_regression = 0.25;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc)
            repeats = std::atoi(argv[++i]);
        else if (std::strncmp(argv[i], "--repeats=", 10) == 0)
            repeats = std::atoi(argv[i] + 10);
        else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc)
            baseline_path = argv[++i];
        else if (std::strncmp(argv[i], "--baseline=", 11) == 0)
            baseline_path = argv[i] + 11;
        else if (std::strcmp(argv[i], "--max-regression") == 0 &&
                 i + 1 < argc)
            max_regression = std::atof(argv[++i]);
        else if (std::strncmp(argv[i], "--max-regression=", 17) == 0)
            max_regression = std::atof(argv[i] + 17);
    }

    printHeaderLine("Simulator throughput (warp-steps/sec of wall time)");

    const SystemConfig multi = presets::multiGpu4x4();

    // A fixed basket: the set must not drift PR-to-PR or the trajectory
    // breaks. Workloads chosen to cover regular streams, GEMM reuse and
    // irregular graphs without making the quick CI pass minutes long.
    std::vector<Basket> baskets;
    {
        Basket b;
        b.name = "interleaved";
        for (const char *w :
             {"VecAdd", "ScalarProd", "CONV", "SQ-GEMM"})
            b.cells.push_back(cell(w, Policy::BaselineRr, multi));
        baskets.push_back(std::move(b));
    }
    {
        Basket b;
        b.name = "lasp";
        for (const char *w :
             {"VecAdd", "SRAD", "SQ-GEMM", "LSTM-2", "PageRank"})
            b.cells.push_back(cell(w, Policy::Ladm, multi));
        baskets.push_back(std::move(b));
    }
    {
        Basket b;
        b.name = "first-touch";
        for (const char *w : {"VecAdd", "CONV", "BFS-relax"})
            b.cells.push_back(cell(w, Policy::BatchFt, multi));
        baskets.push_back(std::move(b));
    }

    std::printf("%-14s %6s %14s %16s %18s %10s\n", "basket", "runs",
                "warp-steps", "warp-steps/sec", "sector-acc/sec",
                "seconds");

    std::vector<BasketResult> results;
    BasketResult total;
    total.name = "total";
    for (const Basket &b : baskets) {
        const BasketResult r = runBasket(b, repeats);
        std::printf("%-14s %6llu %14llu %16.0f %18.0f %10.3f\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.runs),
                    static_cast<unsigned long long>(r.warpSteps),
                    r.wsps(), r.saps(), r.seconds);
        total.warpSteps += r.warpSteps;
        total.sectorAccesses += r.sectorAccesses;
        total.runs += r.runs;
        total.seconds += r.seconds;
        results.push_back(r);
    }
    std::printf("%-14s %6llu %14llu %16.0f %18.0f %10.3f\n", "total",
                static_cast<unsigned long long>(total.runs),
                static_cast<unsigned long long>(total.warpSteps),
                total.wsps(), total.saps(), total.seconds);

    {
        std::ofstream os("BENCH_simperf.json");
        if (os) {
            telemetry::JsonWriter w(os, 1);
            w.beginObject();
            w.kv("schema", "ladm-simperf-v1");
            w.kv("bench", "simperf");
            w.kv("scale", benchScale());
            w.kv("repeats", static_cast<double>(repeats));
            w.key("baskets");
            w.beginArray();
            for (const BasketResult &r : results) {
                w.beginObject();
                w.kv("name", r.name);
                w.kv("runs", static_cast<double>(r.runs));
                w.kv("warp_steps", static_cast<double>(r.warpSteps));
                w.kv("sector_accesses",
                     static_cast<double>(r.sectorAccesses));
                w.kv("seconds", r.seconds);
                w.kv("warp_steps_per_sec", r.wsps());
                w.kv("sector_accesses_per_sec", r.saps());
                w.endObject();
            }
            w.endArray();
            w.key("total");
            w.beginObject();
            w.kv("runs", static_cast<double>(total.runs));
            w.kv("warp_steps", static_cast<double>(total.warpSteps));
            w.kv("sector_accesses",
                 static_cast<double>(total.sectorAccesses));
            w.kv("seconds", total.seconds);
            w.kv("warp_steps_per_sec", total.wsps());
            w.kv("sector_accesses_per_sec", total.saps());
            w.endObject();
            w.endObject();
            os << '\n';
            std::printf("[bench] wrote BENCH_simperf.json\n");
        }
    }

    if (!baseline_path.empty()) {
        std::ifstream is(baseline_path);
        if (!is) {
            std::fprintf(stderr, "[simperf] no baseline at %s\n",
                         baseline_path.c_str());
            return 1;
        }
        std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        // The "total" object is the last warp_steps_per_sec in the file.
        const size_t last =
            text.rfind("\"warp_steps_per_sec\":");
        const double base =
            last == std::string::npos
                ? -1.0
                : extractJsonNumber(text.substr(last),
                                    "warp_steps_per_sec");
        if (base <= 0.0) {
            std::fprintf(stderr,
                         "[simperf] baseline has no usable "
                         "warp_steps_per_sec\n");
            return 1;
        }
        const double ratio = safeRate(total.wsps(), base);
        std::printf("[simperf] %.0f vs baseline %.0f warp-steps/sec "
                    "(%.2fx)\n",
                    total.wsps(), base, ratio);
        if (ratio < 1.0 - max_regression) {
            std::fprintf(stderr,
                         "[simperf] FAIL: throughput regressed %.0f%% "
                         "(limit %.0f%%)\n",
                         (1.0 - ratio) * 100.0, max_regression * 100.0);
            return 1;
        }
    }
    return 0;
}
