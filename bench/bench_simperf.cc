/**
 * @file
 * Simulator-throughput benchmark: how many warp steps and sector
 * accesses per second of wall time the simulator itself sustains.
 *
 * Unlike every other bench (which reports *simulated* metrics), this one
 * tracks the speed of the simulation loop -- the ceiling on how many
 * grid points, scales and seeds every other harness can afford. Three
 * baskets stress the per-access hot paths differently:
 *
 *   interleaved  page-granularity round-robin placement (baseline-rr):
 *                the worst case for the page table -- every page has a
 *                different home than its neighbours
 *   lasp         the full LADM runtime: segment-shaped placements from
 *                LASP plus CRB scheduling
 *   first-touch  batch+ft: no proactive placement, every page resolves
 *                through a UVM fault (exception-overlay heavy)
 *
 * Output: one row per basket plus a total, and BENCH_simperf.json (schema
 * ladm-simperf-v1). Runs are strictly serial -- wall-clock throughput of
 * one worker is the tracked number; --jobs is accepted but ignored.
 *
 * Flags:
 *   --repeats N          run the basket N times, keep the fastest pass
 *                        (default 3; CI quick mode uses 1)
 *   --baseline PATH      compare against the warp_steps_per_sec recorded
 *                        in an earlier BENCH_simperf.json
 *   --max-regression F   with --baseline: exit 1 if total throughput
 *                        drops below (1-F) x baseline (default 0.25)
 *   --min-shard-speedup F  exit 1 if the PDES basket's --shards=4 over
 *                        --shards=1 speedup falls below F; enforced only
 *                        when the host has >= 4 cores (the sharded loop
 *                        cannot beat serial on fewer), otherwise noted
 *                        and skipped
 *
 * The extra "pdes" basket runs a high-locality big-topology set (the
 * sharded event loop's intended regime: under LADM placement nearly
 * every fetch is node-local, so almost no work serializes at the window
 * barrier) once with --shards=1 and once with --shards=4, and records
 * both throughputs plus their ratio. The two passes must agree exactly
 * on warp-step counts -- that conservation is checked here, not just in
 * the unit tests.
 */

#include <chrono>
#include <fstream>
#include <cstring>
#include <iterator>
#include <thread>

#include "bench_util.hh"
#include "telemetry/session.hh"

using namespace ladm;
using namespace ladm::bench;

namespace
{

struct Basket
{
    std::string name;
    std::vector<core::SweepCell> cells;
};

struct BasketResult
{
    std::string name;
    uint64_t warpSteps = 0;
    uint64_t sectorAccesses = 0;
    uint64_t runs = 0;
    double seconds = 0.0;

    double wsps() const { return safeRate(warpSteps, seconds); }
    double saps() const { return safeRate(sectorAccesses, seconds); }
};

/** Wall-clock one serial pass over the basket's cells. */
BasketResult
runBasket(const Basket &b, int repeats)
{
    BasketResult best;
    best.name = b.name;
    best.seconds = 0.0;
    for (int r = 0; r < std::max(1, repeats); ++r) {
        BasketResult pass;
        pass.name = b.name;
        const auto t0 = std::chrono::steady_clock::now();
        for (const core::SweepCell &c : b.cells) {
            auto w = workloads::makeWorkload(c.workload, c.scale);
            auto bundle = makeBundle(c.policy);
            const RunMetrics m =
                runExperiment(*w, *bundle, c.cfg, c.launches);
            pass.warpSteps += m.warpSteps;
            pass.sectorAccesses += m.sectorAccesses;
            ++pass.runs;
        }
        const auto t1 = std::chrono::steady_clock::now();
        pass.seconds =
            std::chrono::duration<double>(t1 - t0).count();
        if (r == 0 || pass.wsps() > best.wsps())
            best = pass;
    }
    return best;
}

/**
 * Minimal extraction of "key": value from a prior BENCH_simperf.json.
 * The document is machine-written by JsonWriter, so a substring scan is
 * exact enough; returns a negative value when the key is absent.
 */
double
extractJsonNumber(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return -1.0;
    return std::atof(text.c_str() + pos + needle.size());
}

} // namespace

int
benchMain(int argc, char **argv)
{
    parseJobsFlag(argc, argv); // accepted for uniformity; runs are serial

    // Observability flags (--timeline-out / --obs-attribution /
    // --obs-heatmap ...) so A/B overhead runs of the same binary work:
    // obs off is the tracked configuration, obs on measures its own cost.
    telemetry::session().configure(
        TelemetryOptions::parseArgs(argc, argv));

    int repeats = 3;
    std::string baseline_path;
    double max_regression = 0.25;
    double min_shard_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc)
            repeats = std::atoi(argv[++i]);
        else if (std::strncmp(argv[i], "--repeats=", 10) == 0)
            repeats = std::atoi(argv[i] + 10);
        else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc)
            baseline_path = argv[++i];
        else if (std::strncmp(argv[i], "--baseline=", 11) == 0)
            baseline_path = argv[i] + 11;
        else if (std::strcmp(argv[i], "--max-regression") == 0 &&
                 i + 1 < argc)
            max_regression = std::atof(argv[++i]);
        else if (std::strncmp(argv[i], "--max-regression=", 17) == 0)
            max_regression = std::atof(argv[i] + 17);
        else if (std::strcmp(argv[i], "--min-shard-speedup") == 0 &&
                 i + 1 < argc)
            min_shard_speedup = std::atof(argv[++i]);
        else if (std::strncmp(argv[i], "--min-shard-speedup=", 20) == 0)
            min_shard_speedup = std::atof(argv[i] + 20);
    }

    printHeaderLine("Simulator throughput (warp-steps/sec of wall time)");

    const SystemConfig multi = presets::multiGpu4x4();

    // A fixed basket: the set must not drift PR-to-PR or the trajectory
    // breaks. Workloads chosen to cover regular streams, GEMM reuse and
    // irregular graphs without making the quick CI pass minutes long.
    std::vector<Basket> baskets;
    {
        Basket b;
        b.name = "interleaved";
        for (const char *w :
             {"VecAdd", "ScalarProd", "CONV", "SQ-GEMM"})
            b.cells.push_back(cell(w, Policy::BaselineRr, multi));
        baskets.push_back(std::move(b));
    }
    {
        Basket b;
        b.name = "lasp";
        for (const char *w :
             {"VecAdd", "SRAD", "SQ-GEMM", "LSTM-2", "PageRank"})
            b.cells.push_back(cell(w, Policy::Ladm, multi));
        baskets.push_back(std::move(b));
    }
    {
        Basket b;
        b.name = "first-touch";
        for (const char *w : {"VecAdd", "CONV", "BFS-relax"})
            b.cells.push_back(cell(w, Policy::BatchFt, multi));
        baskets.push_back(std::move(b));
    }

    std::printf("%-14s %6s %14s %16s %18s %10s\n", "basket", "runs",
                "warp-steps", "warp-steps/sec", "sector-acc/sec",
                "seconds");

    std::vector<BasketResult> results;
    BasketResult total;
    total.name = "total";
    for (const Basket &b : baskets) {
        const BasketResult r = runBasket(b, repeats);
        std::printf("%-14s %6llu %14llu %16.0f %18.0f %10.3f\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.runs),
                    static_cast<unsigned long long>(r.warpSteps),
                    r.wsps(), r.saps(), r.seconds);
        total.warpSteps += r.warpSteps;
        total.sectorAccesses += r.sectorAccesses;
        total.runs += r.runs;
        total.seconds += r.seconds;
        results.push_back(r);
    }
    std::printf("%-14s %6llu %14llu %16.0f %18.0f %10.3f\n", "total",
                static_cast<unsigned long long>(total.runs),
                static_cast<unsigned long long>(total.warpSteps),
                total.wsps(), total.saps(), total.seconds);

    // --- PDES basket: sharded vs serial event loop ----------------------
    // High-locality cells on the big topology: under Policy::Ladm nearly
    // every fetch is node-local, so the lanes stay busy between barriers
    // instead of funnelling remote ops through the serial phase.
    const unsigned host_cores = std::thread::hardware_concurrency();
    BasketResult shard_res[2];
    for (int pass = 0; pass < 2; ++pass) {
        SystemConfig cfg = multi;
        cfg.shards = pass == 0 ? 1 : 4;
        Basket b;
        b.name = pass == 0 ? "pdes/shards=1" : "pdes/shards=4";
        struct PdesCell { const char *w; double scale; };
        for (const PdesCell pc : {PdesCell{"VecAdd", 4.0},
                                  PdesCell{"ScalarProd", 4.0},
                                  PdesCell{"CONV", 1.0},
                                  PdesCell{"SRAD", 4.0}}) {
            core::SweepCell c = cell(pc.w, Policy::Ladm, cfg);
            c.scale *= pc.scale;
            b.cells.push_back(std::move(c));
        }
        shard_res[pass] = runBasket(b, repeats);
        const BasketResult &r = shard_res[pass];
        std::printf("%-14s %6llu %14llu %16.0f %18.0f %10.3f\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.runs),
                    static_cast<unsigned long long>(r.warpSteps),
                    r.wsps(), r.saps(), r.seconds);
    }
    // Conservation: the partitioned loop must execute exactly the same
    // work as the serial reference, whatever the wall-clock says.
    if (shard_res[0].warpSteps != shard_res[1].warpSteps ||
        shard_res[0].sectorAccesses != shard_res[1].sectorAccesses) {
        std::fprintf(stderr,
                     "[simperf] FAIL: sharded run lost work (%llu vs "
                     "%llu warp-steps)\n",
                     static_cast<unsigned long long>(
                         shard_res[1].warpSteps),
                     static_cast<unsigned long long>(
                         shard_res[0].warpSteps));
        return 1;
    }
    const double shard_speedup =
        safeRate(shard_res[1].wsps(), shard_res[0].wsps());
    std::printf("[simperf] pdes shards=4 vs shards=1: %.2fx "
                "(%u host cores)\n",
                shard_speedup, host_cores);

    {
        std::ofstream os("BENCH_simperf.json");
        if (os) {
            telemetry::JsonWriter w(os, 1);
            w.beginObject();
            w.kv("schema", "ladm-simperf-v1");
            w.kv("bench", "simperf");
            w.kv("scale", benchScale());
            w.kv("repeats", static_cast<double>(repeats));
            w.key("baskets");
            w.beginArray();
            for (const BasketResult &r : results) {
                w.beginObject();
                w.kv("name", r.name);
                w.kv("runs", static_cast<double>(r.runs));
                w.kv("warp_steps", static_cast<double>(r.warpSteps));
                w.kv("sector_accesses",
                     static_cast<double>(r.sectorAccesses));
                w.kv("seconds", r.seconds);
                w.kv("warp_steps_per_sec", r.wsps());
                w.kv("sector_accesses_per_sec", r.saps());
                w.endObject();
            }
            w.endArray();
            w.key("total");
            w.beginObject();
            w.kv("runs", static_cast<double>(total.runs));
            w.kv("warp_steps", static_cast<double>(total.warpSteps));
            w.kv("sector_accesses",
                 static_cast<double>(total.sectorAccesses));
            w.kv("seconds", total.seconds);
            w.kv("warp_steps_per_sec", total.wsps());
            w.kv("sector_accesses_per_sec", total.saps());
            w.endObject();
            // NOTE: placed after "total", and deliberately NOT using
            // the warp_steps_per_sec key: the --baseline gate takes the
            // file's LAST warp_steps_per_sec as the total.
            w.key("pdes");
            w.beginObject();
            w.kv("shards", 4.0);
            w.kv("host_cores", static_cast<double>(host_cores));
            w.kv("warp_steps",
                 static_cast<double>(shard_res[0].warpSteps));
            w.kv("shard1_seconds", shard_res[0].seconds);
            w.kv("shard4_seconds", shard_res[1].seconds);
            w.kv("shard1_wsps", shard_res[0].wsps());
            w.kv("shard4_wsps", shard_res[1].wsps());
            w.kv("speedup", shard_speedup);
            w.endObject();
            w.endObject();
            os << '\n';
            std::printf("[bench] wrote BENCH_simperf.json\n");
        }
    }

    if (min_shard_speedup > 0.0) {
        if (host_cores >= 4) {
            if (shard_speedup < min_shard_speedup) {
                std::fprintf(stderr,
                             "[simperf] FAIL: pdes speedup %.2fx below "
                             "the %.2fx floor\n",
                             shard_speedup, min_shard_speedup);
                return 1;
            }
        } else {
            // With fewer cores than shards the lanes time-slice one
            // CPU and a wall-clock win is physically impossible; the
            // conservation check above still ran.
            std::printf("[simperf] pdes speedup floor skipped: %u host "
                        "cores < 4\n",
                        host_cores);
        }
    }

    if (!baseline_path.empty()) {
        std::ifstream is(baseline_path);
        if (!is) {
            std::fprintf(stderr, "[simperf] no baseline at %s\n",
                         baseline_path.c_str());
            return 1;
        }
        std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        // The "total" object is the last warp_steps_per_sec in the file.
        const size_t last =
            text.rfind("\"warp_steps_per_sec\":");
        const double base =
            last == std::string::npos
                ? -1.0
                : extractJsonNumber(text.substr(last),
                                    "warp_steps_per_sec");
        if (base <= 0.0) {
            std::fprintf(stderr,
                         "[simperf] baseline has no usable "
                         "warp_steps_per_sec\n");
            return 1;
        }
        const double ratio = safeRate(total.wsps(), base);
        std::printf("[simperf] %.0f vs baseline %.0f warp-steps/sec "
                    "(%.2fx)\n",
                    total.wsps(), base, ratio);
        if (ratio < 1.0 - max_regression) {
            std::fprintf(stderr,
                         "[simperf] FAIL: throughput regressed %.0f%% "
                         "(limit %.0f%%)\n",
                         (1.0 - ratio) * 100.0, max_regression * 100.0);
            return 1;
        }
    }
    return 0;
}

int
main(int argc, char **argv)
{
    // snapshot::runMain maps a graceful SIGINT/SIGTERM stop (checkpoint
    // flushed at the engine's safe point) to exit 75 and lets the
    // telemetry atexit finalizer publish partial sinks.
    return ladm::snapshot::runMain([&] { return benchMain(argc, argv); });
}
