/**
 * @file
 * Table III: the simulated machine configuration. Printed from the
 * actual presets so the table can never drift from the code.
 */

#include <cstdio>

#include "config/presets.hh"
#include "snapshot/snapshot.hh"

using namespace ladm;

int
benchMain()
{
    const SystemConfig c = presets::multiGpu4x4();
    const SystemConfig mono = presets::monolithic256();

    std::printf("Table III -- multi-GPU configuration (from "
                "presets::multiGpu4x4)\n\n");
    std::printf("%-26s %d GPUs, %d chiplets per GPU\n", "#GPUs",
                c.numGpus, c.chipletsPerGpu);
    std::printf("%-26s %d SMs (%d per GPU, %d per chiplet)\n", "#SMs",
                c.totalSms(), c.totalSms() / c.numGpus, c.smsPerChiplet);
    std::printf("%-26s %d warps, %d resident TBs, %.1f GHz, "
                "%llu KB L1 per SM\n",
                "SM configuration", c.warpSlotsPerSm,
                c.maxResidentTbsPerSm, c.clockGhz,
                static_cast<unsigned long long>(c.l1SizePerSm / 1024));
    std::printf("%-26s %llu MB total (%llu MB per chiplet), %d banks, "
                "%d-way, dynamic shared with remote caching%s\n",
                "L2 cache",
                static_cast<unsigned long long>(
                    c.l2SizePerChiplet * c.numNodes() / (1 << 20)),
                static_cast<unsigned long long>(c.l2SizePerChiplet /
                                                (1 << 20)),
                c.l2BanksPerChiplet * c.numNodes(), c.l2Assoc,
                c.remoteCachingL2 ? "" : " (disabled)");
    std::printf("%-26s %.0f GB/s total\n", "Intra-chiplet connect",
                c.intraChipletXbarGBs);
    std::printf("%-26s bi-directional ring, %.0f GB/s per GPU, "
                "%llu-cycle hops\n",
                "Inter-chiplet connect", c.interChipletRingGBs,
                static_cast<unsigned long long>(c.ringHopLatencyCycles));
    std::printf("%-26s crossbar, %.0f GB/s per link, %llu-cycle "
                "traversal\n",
                "Inter-GPU connect", c.interGpuLinkGBs,
                static_cast<unsigned long long>(c.switchLatencyCycles));
    std::printf("%-26s %.0f GB/s total\n", "Monolithic interconnect",
                mono.intraChipletXbarGBs);
    std::printf("%-26s %.0f GB/s per chiplet (%.0f GB/s per GPU), "
                "%d channels, %llu-cycle latency\n",
                "Memory BW", c.memBwPerChipletGBs,
                c.memBwPerChipletGBs * c.chipletsPerGpu,
                c.dramChannelsPerChiplet,
                static_cast<unsigned long long>(c.dramLatencyCycles));
    std::printf("%-26s %llu B pages, %s coherence flush at kernel "
                "boundaries\n",
                "Memory system",
                static_cast<unsigned long long>(c.pageSize),
                c.flushL2BetweenKernels ? "software" : "hardware (no)");

    std::printf("\npaper's Table III: 4 GPUs x 4 chiplets, 256 SMs, "
                "16MB L2, 720 GB/s ring,\n  180 GB/s links, 11.2 TB/s "
                "monolithic crossbar, 180 GB/s HBM per chiplet.\n");
    return 0;
}

int
main()
{
    // snapshot::runMain maps a graceful SIGINT/SIGTERM stop (checkpoint
    // flushed at the engine's safe point) to exit 75 and lets the
    // telemetry atexit finalizer publish partial sinks.
    return ladm::snapshot::runMain([&] { return benchMain(); });
}
