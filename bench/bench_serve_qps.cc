/**
 * @file
 * Load benchmark for the placement-advisor service (src/serve/): an
 * in-process Server on a Unix socket, hammered by client threads, in
 * two phases:
 *
 *   steady    a working set of distinct kernels cycled by a few
 *             clients: after one cold pass everything is a cache hit.
 *             Tracked: qps, hit rate, p50/p99 service latency.
 *   overload  a tiny server (1 worker, short queue, stalled
 *             classifier) offered ~2x its capacity of all-distinct
 *             requests. The robustness contract under test: the server
 *             stays up, refuses the excess with structured BUSY
 *             (shed_fraction > 0), and the p99 of *accepted* requests
 *             stays within the request deadline (degraded answers keep
 *             the budget honest).
 *
 * Output: one row per phase and BENCH_serve_qps.json (schema
 * ladm-serve-v1). Absolute qps is machine-dependent and NOT a committed
 * baseline; the gates are the structural assertions above, so the bench
 * is its own CI check (exit 1 on violation).
 *
 * Flags:
 *   --seconds F      measured duration per phase (default 1.5)
 *   --clients N      steady-phase client threads (default 4)
 *   --kernels N      steady-phase working-set size (default 16)
 *   --connect ADDR   skip the in-process servers and drive an external
 *                    daemon (tools/ladm_served.cc) at ADDR instead; one
 *                    "external" phase, stats fetched over the wire. The
 *                    CI smoke job uses this to exercise SIGTERM/exit-75
 *                    and journal warm restart on the real binary.
 *   --min-hit-rate F with --connect: gate the phase hit rate (the
 *                    warm-restart assertion: a replayed journal serves
 *                    hits immediately)
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "serve/client.hh"
#include "serve/server.hh"
#include "snapshot/snapshot.hh"
#include "telemetry/json_writer.hh"

using namespace ladm;

namespace
{

const char *kSgemm = R"(
kernel sgemm(A, B, C) {
    let W   = gridDim.x * blockDim.x;
    let Row = blockIdx.y * 16 + threadIdx.y;
    let Col = blockIdx.x * 16 + threadIdx.x;
    loop m {
        read A[Row * W + m * 16 + threadIdx.x] : f32;
        read B[(m * 16 + threadIdx.y) * W + Col] : f32;
    }
    write C[Row * W + Col] : f32;
}
)";

serve::PlacementRequest
request(int variant, uint32_t deadline_us)
{
    serve::PlacementRequest req;
    req.kernelSource = kSgemm;
    req.dims.grid = {16 + variant, 16 + variant};
    req.dims.block = {16, 16};
    req.dims.loopTrips = 32;
    req.argBytes = {4u << 20, 4u << 20, 4u << 20};
    req.deadlineUs = deadline_us;
    return req;
}

std::string
socketAddress(const char *phase)
{
    return "unix:/tmp/ladm_bench_serve_" + std::string(phase) + "_" +
           std::to_string(::getpid()) + ".sock";
}

struct PhaseResult
{
    std::string name;
    double seconds = 0.0;
    uint64_t completed = 0; ///< ok replies observed by the clients
    uint64_t busy = 0;      ///< BUSY/SHUTTING_DOWN replies
    uint64_t errors = 0;    ///< anything else
    double requests = 0.0;  ///< server-side accepted Place frames
    double hitRate = 0.0;
    double shedFraction = 0.0;
    double degradedFraction = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;

    double qps() const
    {
        return seconds > 0.0 ? static_cast<double>(completed) / seconds
                             : 0.0;
    }
};

/** Flat serve.* stats fetched over the wire (works for any server). */
std::map<std::string, double>
wireStats(const std::string &address)
{
    std::map<std::string, double> m;
    serve::Client client(address);
    std::vector<std::pair<std::string, double>> rows;
    if (client.stats(&rows))
        for (auto &kv : rows)
            m[kv.first] = kv.second;
    return m;
}

/**
 * Run @p clients threads against the server at @p address for
 * @p seconds, each cycling its own stride through @p kernels distinct
 * requests. Counter-style stats are deltas across the phase, so an
 * external daemon with history reads the same as a fresh one.
 */
PhaseResult
runPhase(const char *name, const std::string &address, int clients,
         int kernels, double seconds, uint32_t deadline_us)
{
    PhaseResult res;
    res.name = name;
    const std::map<std::string, double> before = wireStats(address);
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> completed{0}, busy{0}, errors{0};

    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            serve::Client client(address,
                                 static_cast<uint64_t>(c) + 1);
            int i = c; // stagger the strides so misses interleave
            while (!stop.load(std::memory_order_relaxed)) {
                const serve::ServeResult r =
                    client.place(request(i % kernels, deadline_us));
                if (r.ok())
                    ++completed;
                else if (r.code == ErrCode::Busy ||
                         r.code == ErrCode::ShuttingDown)
                    ++busy;
                else
                    ++errors;
                ++i;
            }
        });

    const auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    stop = true;
    for (auto &t : threads)
        t.join();
    res.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    res.completed = completed.load();
    res.busy = busy.load();
    res.errors = errors.load();
    std::map<std::string, double> after = wireStats(address);
    const auto delta = [&](const char *key) {
        const std::string k = std::string("serve.") + key;
        const auto b = before.find(k);
        const auto a = after.find(k);
        return (a == after.end() ? 0.0 : a->second) -
               (b == before.end() ? 0.0 : b->second);
    };
    res.requests = delta("requests");
    const double hits = delta("hits");
    const double shed = delta("shed");
    const double degraded = delta("degraded");
    if (res.requests > 0.0) {
        res.hitRate = hits / res.requests;
        res.shedFraction = shed / res.requests;
        res.degradedFraction = degraded / res.requests;
    }
    res.p50Us = after["serve.latency_us.p50"];
    res.p99Us = after["serve.latency_us.p99"];
    return res;
}

void
printPhase(const PhaseResult &r)
{
    std::printf("%-10s %8.0f %8llu %8llu %7.3f %7.3f %7.3f %9.0f %9.0f\n",
                r.name.c_str(), r.qps(),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.busy), r.hitRate,
                r.shedFraction, r.degradedFraction, r.p50Us, r.p99Us);
}

int
benchMain(int argc, char **argv)
{
    double seconds = 1.5;
    int clients = 4;
    int kernels = 16;
    std::string connect;
    double min_hit_rate = -1.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc)
            seconds = std::atof(argv[++i]);
        else if (std::strncmp(argv[i], "--seconds=", 10) == 0)
            seconds = std::atof(argv[i] + 10);
        else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc)
            clients = std::atoi(argv[++i]);
        else if (std::strncmp(argv[i], "--clients=", 10) == 0)
            clients = std::atoi(argv[i] + 10);
        else if (std::strcmp(argv[i], "--kernels") == 0 && i + 1 < argc)
            kernels = std::atoi(argv[++i]);
        else if (std::strncmp(argv[i], "--kernels=", 10) == 0)
            kernels = std::atoi(argv[i] + 10);
        else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc)
            connect = argv[++i];
        else if (std::strncmp(argv[i], "--connect=", 10) == 0)
            connect = argv[i] + 10;
        else if (std::strcmp(argv[i], "--min-hit-rate") == 0 &&
                 i + 1 < argc)
            min_hit_rate = std::atof(argv[++i]);
        else if (std::strncmp(argv[i], "--min-hit-rate=", 15) == 0)
            min_hit_rate = std::atof(argv[i] + 15);
    }

    std::printf("Placement-advisor service load (src/serve)\n");
    std::printf("%-10s %8s %8s %8s %7s %7s %7s %9s %9s\n", "phase",
                "qps", "ok", "busy", "hit", "shed", "degr", "p50us",
                "p99us");

    // --- external mode: drive a daemon someone else started -------------
    if (!connect.empty()) {
        const uint32_t deadline_us = 100000;
        const PhaseResult ext = runPhase("external", connect, clients,
                                         kernels, seconds, deadline_us);
        printPhase(ext);
        {
            std::ofstream os("BENCH_serve_qps.json");
            if (os) {
                telemetry::JsonWriter w(os, 1);
                w.beginObject();
                w.kv("schema", "ladm-serve-v1");
                w.kv("bench", "serve_qps");
                w.kv("seconds", seconds);
                w.kv("connect", connect);
                w.key("phases");
                w.beginArray();
                w.beginObject();
                w.kv("name", ext.name);
                w.kv("qps", ext.qps());
                w.kv("completed", static_cast<double>(ext.completed));
                w.kv("busy", static_cast<double>(ext.busy));
                w.kv("errors", static_cast<double>(ext.errors));
                w.kv("hit_rate", ext.hitRate);
                w.kv("shed_fraction", ext.shedFraction);
                w.kv("degraded_fraction", ext.degradedFraction);
                w.kv("p50_us", ext.p50Us);
                w.kv("p99_us", ext.p99Us);
                w.endObject();
                w.endArray();
                w.endObject();
                os << '\n';
            }
        }
        int failures = 0;
        if (ext.completed == 0) {
            std::fprintf(stderr, "[serve-qps] FAIL: no requests "
                                 "completed against %s\n",
                         connect.c_str());
            ++failures;
        }
        if (min_hit_rate >= 0.0 && ext.hitRate < min_hit_rate) {
            std::fprintf(stderr,
                         "[serve-qps] FAIL: hit rate %.3f below the "
                         "%.3f floor (journal replay broken?)\n",
                         ext.hitRate, min_hit_rate);
            ++failures;
        }
        if (failures == 0)
            std::printf("[serve-qps] PASS: %.0f qps against %s, hit "
                        "rate %.3f\n",
                        ext.qps(), connect.c_str(), ext.hitRate);
        return failures == 0 ? 0 : 1;
    }

    // --- steady: warm working set, real classifier ----------------------
    const uint32_t steady_deadline_us = 100000;
    PhaseResult steady;
    {
        serve::ServerOptions o;
        o.listen = socketAddress("steady");
        o.workers = 4;
        o.queueCapacity = 64;
        serve::Server server(o);
        server.start();
        steady = runPhase("steady", server.address(), clients, kernels, seconds,
                          steady_deadline_us);
        server.shutdown();
        printPhase(steady);
    }

    // --- overload: ~2x capacity offered, all-distinct requests ----------
    // 1 worker x 20 ms stalled classifier = ~50 computations/sec of
    // capacity; 8 clients bouncing off a 10 ms degraded budget offer an
    // order of magnitude more. The excess MUST shed as BUSY.
    const uint32_t overload_deadline_us = 100000;
    PhaseResult overload;
    bool alive = false;
    {
        serve::ServerOptions o;
        o.listen = socketAddress("overload");
        o.workers = 1;
        o.queueCapacity = 2;
        o.classifierBudgetUs = 10000;
        o.faultSpec = "stall:20000";
        serve::Server server(o);
        server.start();
        overload = runPhase("overload", server.address(), 8, 4096, seconds,
                            overload_deadline_us);
        serve::Client probe(server.address());
        alive = probe.ping();
        server.shutdown();
        printPhase(overload);
    }

    {
        std::ofstream os("BENCH_serve_qps.json");
        if (os) {
            telemetry::JsonWriter w(os, 1);
            w.beginObject();
            w.kv("schema", "ladm-serve-v1");
            w.kv("bench", "serve_qps");
            w.kv("seconds", seconds);
            w.kv("clients", static_cast<double>(clients));
            w.kv("kernels", static_cast<double>(kernels));
            w.key("phases");
            w.beginArray();
            for (const PhaseResult *r : {&steady, &overload}) {
                w.beginObject();
                w.kv("name", r->name);
                w.kv("qps", r->qps());
                w.kv("completed", static_cast<double>(r->completed));
                w.kv("busy", static_cast<double>(r->busy));
                w.kv("errors", static_cast<double>(r->errors));
                w.kv("hit_rate", r->hitRate);
                w.kv("shed_fraction", r->shedFraction);
                w.kv("degraded_fraction", r->degradedFraction);
                w.kv("p50_us", r->p50Us);
                w.kv("p99_us", r->p99Us);
                w.endObject();
            }
            w.endArray();
            w.endObject();
            os << '\n';
            std::printf("[bench] wrote BENCH_serve_qps.json\n");
        }
    }

    // --- structural gates (self-contained; no machine baseline) ---------
    int failures = 0;
    const auto gate = [&](bool ok, const char *what) {
        if (!ok) {
            std::fprintf(stderr, "[serve-qps] FAIL: %s\n", what);
            ++failures;
        }
    };
    gate(steady.completed > 0, "steady phase completed no requests");
    gate(steady.hitRate >= 0.5,
         "steady-phase hit rate below 0.5 (cache not working)");
    gate(steady.p99Us > 0.0 &&
             steady.p99Us <= static_cast<double>(steady_deadline_us),
         "steady-phase p99 outside the request deadline");
    gate(alive, "server unreachable after overload (did it crash?)");
    gate(overload.busy > 0 && overload.shedFraction > 0.0,
         "overload did not shed (queue must refuse excess load)");
    gate(overload.completed > 0,
         "overload starved accepted requests entirely");
    gate(overload.p99Us > 0.0 &&
             overload.p99Us <= static_cast<double>(overload_deadline_us),
         "overload p99 of accepted requests outside the deadline");
    gate(overload.errors == 0,
         "overload produced non-BUSY errors");

    if (failures == 0)
        std::printf("[serve-qps] PASS: served %.0f qps steady / %.0f "
                    "qps under 2x overload, shed %.0f%%, p99 %.0fus\n",
                    steady.qps(), overload.qps(),
                    overload.shedFraction * 100.0, overload.p99Us);
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    return ladm::snapshot::runMain([&] { return benchMain(argc, argv); });
}
