/**
 * @file
 * Section IV-C: the hardware-validation experiment. The paper hand-
 * implements LASP's placement + scheduling for the RCL machine-learning
 * GEMMs on a real 4-GPU DGX-1 and reports 1.9x over CODA and 1.4x over
 * kernel-wide partitioning. We reproduce the decision pipeline on the
 * DGX-like flat 4-GPU model (NVLink-class links, no chiplets).
 */

#include "bench_util.hh"

using namespace ladm;
using namespace ladm::bench;

int
benchMain(int argc, char **argv)
{
    const int jobs = parseJobsFlag(argc, argv);

    printHeaderLine("Section IV-C -- LASP on a DGX-1-like 4-GPU box "
                    "(RCL ML workloads)");

    const SystemConfig dgx = presets::dgx4();
    const std::vector<std::string> ml = {"SQ-GEMM",  "Alexnet-FC-2",
                                         "VGGnet-FC-2", "Resnet-50-FC",
                                         "LSTM-1",   "LSTM-2"};

    std::vector<core::SweepCell> cells;
    for (const auto &name : ml) {
        cells.push_back(cell(name, Policy::KernelWide, dgx));
        cells.push_back(cell(name, Policy::Coda, dgx));
        cells.push_back(cell(name, Policy::LaspRtwice, dgx));
    }
    const std::vector<RunMetrics> results = runGrid(cells, jobs);

    std::printf("%-14s %12s %12s %12s | %10s %10s\n", "workload",
                "kernel-wide", "CODA", "LASP", "vs CODA", "vs k-wide");

    std::vector<double> vs_coda, vs_kwide;
    size_t i = 0;
    for (const auto &name : ml) {
        const Cycles kw = results[i++].cycles;
        const Cycles coda = results[i++].cycles;
        const Cycles lasp = results[i++].cycles;
        vs_coda.push_back(static_cast<double>(coda) / lasp);
        vs_kwide.push_back(static_cast<double>(kw) / lasp);
        std::printf("%-14s %12llu %12llu %12llu | %9.2fx %9.2fx\n",
                    name.c_str(), static_cast<unsigned long long>(kw),
                    static_cast<unsigned long long>(coda),
                    static_cast<unsigned long long>(lasp),
                    vs_coda.back(), vs_kwide.back());
        std::fflush(stdout);
    }

    std::printf("\nGEOMEAN  LASP vs CODA: %.2fx (paper: 1.9x)   "
                "LASP vs kernel-wide: %.2fx (paper: 1.4x)\n",
                geomean(vs_coda), geomean(vs_kwide));
    return 0;
}

int
main(int argc, char **argv)
{
    // snapshot::runMain maps a graceful SIGINT/SIGTERM stop (checkpoint
    // flushed at the engine's safe point) to exit 75 and lets the
    // telemetry atexit finalizer publish partial sinks.
    return ladm::snapshot::runMain([&] { return benchMain(argc, argv); });
}
