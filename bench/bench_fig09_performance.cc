/**
 * @file
 * Fig. 9: performance of H-CODA, LASP+RTWICE, LASP+RONCE, LADM
 * (LASP+CRB), and the hypothetical monolithic GPU on the 4-GPU x
 * 4-chiplet machine, for all 27 workloads, normalized to H-CODA.
 */

#include "bench_util.hh"

using namespace ladm;
using namespace ladm::bench;

int
main()
{
    printHeaderLine("Fig. 9 -- performance normalized to H-CODA "
                    "(multi-GPU 4x4, Table III)");

    const SystemConfig multi = presets::multiGpu4x4();
    const SystemConfig mono = presets::monolithic256();
    const CsvSink csv("fig09");
    BenchJsonSink json("fig09");

    std::printf("%-14s %9s %9s %9s %9s %9s\n", "workload", "H-CODA",
                "LASP+RT", "LASP+RO", "LADM", "Monolith");

    std::vector<double> ladm_vs_hcoda;
    std::vector<double> ladm_vs_mono;
    for (const auto &[section, names] : workloadSections()) {
        std::printf("--- %s\n", section.c_str());
        for (const auto &name : names) {
            const auto hc_m = run(name, Policy::Coda, multi);
            const auto rt_m = run(name, Policy::LaspRtwice, multi);
            const auto ro_m = run(name, Policy::LaspRonce, multi);
            const auto la_m = run(name, Policy::Ladm, multi);
            const auto mo_m = run(name, Policy::KernelWide, mono);
            for (const auto *m : {&hc_m, &rt_m, &ro_m, &la_m, &mo_m}) {
                csv.add(*m);
                json.add(*m);
            }
            const Cycles hc = hc_m.cycles, rt = rt_m.cycles,
                         ro = ro_m.cycles, la = la_m.cycles,
                         mo = mo_m.cycles;
            auto rel = [&](Cycles c) {
                return static_cast<double>(hc) / c;
            };
            std::printf("%-14s %9.2f %9.2f %9.2f %9.2f %9.2f\n",
                        name.c_str(), 1.0, rel(rt), rel(ro), rel(la),
                        rel(mo));
            std::fflush(stdout);
            ladm_vs_hcoda.push_back(rel(la));
            ladm_vs_mono.push_back(static_cast<double>(mo) / la);
        }
    }

    std::printf("\nGEOMEAN  LADM vs H-CODA: %.2fx   (paper: 1.8x)\n",
                geomean(ladm_vs_hcoda));
    std::printf("GEOMEAN  LADM vs monolithic: %.2f (paper: 0.82)\n",
                geomean(ladm_vs_mono));
    return 0;
}
