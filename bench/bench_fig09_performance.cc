/**
 * @file
 * Fig. 9: performance of H-CODA, LASP+RTWICE, LASP+RONCE, LADM
 * (LASP+CRB), and the hypothetical monolithic GPU on the 4-GPU x
 * 4-chiplet machine, for all 27 workloads, normalized to H-CODA.
 */

#include "bench_util.hh"

using namespace ladm;
using namespace ladm::bench;

int
benchMain(int argc, char **argv)
{
    const int jobs = parseJobsFlag(argc, argv);

    printHeaderLine("Fig. 9 -- performance normalized to H-CODA "
                    "(multi-GPU 4x4, Table III)");

    const SystemConfig multi = presets::multiGpu4x4();
    const SystemConfig mono = presets::monolithic256();
    CsvSink csv("fig09");
    BenchJsonSink json("fig09");

    // Five policy columns per workload, in print order.
    std::vector<core::SweepCell> cells;
    for (const auto &[section, names] : workloadSections()) {
        for (const auto &name : names) {
            cells.push_back(cell(name, Policy::Coda, multi));
            cells.push_back(cell(name, Policy::LaspRtwice, multi));
            cells.push_back(cell(name, Policy::LaspRonce, multi));
            cells.push_back(cell(name, Policy::Ladm, multi));
            cells.push_back(cell(name, Policy::KernelWide, mono));
        }
    }
    const std::vector<RunMetrics> results = runGrid(cells, jobs);

    std::printf("%-14s %9s %9s %9s %9s %9s\n", "workload", "H-CODA",
                "LASP+RT", "LASP+RO", "LADM", "Monolith");

    std::vector<double> ladm_vs_hcoda;
    std::vector<double> ladm_vs_mono;
    size_t i = 0;
    for (const auto &[section, names] : workloadSections()) {
        std::printf("--- %s\n", section.c_str());
        for (const auto &name : names) {
            const RunMetrics &hc_m = results[i++];
            const RunMetrics &rt_m = results[i++];
            const RunMetrics &ro_m = results[i++];
            const RunMetrics &la_m = results[i++];
            const RunMetrics &mo_m = results[i++];
            for (const auto *m : {&hc_m, &rt_m, &ro_m, &la_m, &mo_m}) {
                csv.add(*m);
                json.add(*m);
            }
            const Cycles hc = hc_m.cycles, rt = rt_m.cycles,
                         ro = ro_m.cycles, la = la_m.cycles,
                         mo = mo_m.cycles;
            auto rel = [&](Cycles c) {
                return static_cast<double>(hc) / c;
            };
            std::printf("%-14s %9.2f %9.2f %9.2f %9.2f %9.2f\n",
                        name.c_str(), 1.0, rel(rt), rel(ro), rel(la),
                        rel(mo));
            std::fflush(stdout);
            ladm_vs_hcoda.push_back(rel(la));
            ladm_vs_mono.push_back(static_cast<double>(mo) / la);
        }
    }

    std::printf("\nGEOMEAN  LADM vs H-CODA: %.2fx   (paper: 1.8x)\n",
                geomean(ladm_vs_hcoda));
    std::printf("GEOMEAN  LADM vs monolithic: %.2f (paper: 0.82)\n",
                geomean(ladm_vs_mono));
    return 0;
}

int
main(int argc, char **argv)
{
    // snapshot::runMain maps a graceful SIGINT/SIGTERM stop (checkpoint
    // flushed at the engine's safe point) to exit 75 and lets the
    // telemetry atexit finalizer publish partial sinks.
    return ladm::snapshot::runMain([&] { return benchMain(argc, argv); });
}
