/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot components:
 * the symbolic algebra, the sectored cache, the page table, the
 * bandwidth servers, and trace generation. These gate the wall-clock
 * cost of the figure harnesses, not any paper result.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "common/bandwidth_server.hh"
#include "common/rng.hh"
#include "kernel/expr.hh"
#include "mem/page_table.hh"
#include "mem/placement.hh"
#include "workloads/access_gen.hh"

namespace ladm
{
namespace
{

using namespace dsl;

void
BM_ExprEval(benchmark::State &state)
{
    const Expr idx = (by * 16 + ty) * (gdx * bdx) + m * 16 + tx;
    const Binding b = makeBinding(3, 2, 7, 9, 16, 16, 48, 48, 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(idx.eval(b));
}
BENCHMARK(BM_ExprEval);

void
BM_ExprMultiply(benchmark::State &state)
{
    const Expr a = by * bdy + ty;
    const Expr b = gdx * bdx;
    for (auto _ : state)
        benchmark::DoNotOptimize(a * b + m * 16 + tx);
}
BENCHMARK(BM_ExprMultiply);

void
BM_CacheAccess(benchmark::State &state)
{
    SectoredCache cache(1 << 20, 16, "bm");
    Rng rng(1);
    std::vector<Addr> addrs(8192);
    for (auto &a : addrs)
        a = rng.nextBounded(1 << 22) * kSectorSize;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addrs[i++ & 8191], false, true));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_PageTableLookup(benchmark::State &state)
{
    PageTable pt(4096);
    placeInterleaved(pt, 0, 64 << 20, allNodes(16), 4096);
    Rng rng(2);
    std::vector<Addr> addrs(8192);
    for (auto &a : addrs)
        a = rng.nextBounded(64 << 20);
    size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(pt.lookup(addrs[i++ & 8191]));
}
BENCHMARK(BM_PageTableLookup);

void
BM_BandwidthServerBook(benchmark::State &state)
{
    BandwidthServer s(128.0, 100);
    Cycles now = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(s.book(now++, 32));
}
BENCHMARK(BM_BandwidthServerBook);

void
BM_AffineWarpStep(benchmark::State &state)
{
    KernelDesc k;
    k.numArgs = 1;
    k.accesses.push_back(
        {0, (by * 16 + ty) * (gdx * bdx) + m * 16 + tx, 4, false});
    LaunchDims dims;
    dims.grid = {48, 48};
    dims.block = {16, 16};
    dims.loopTrips = 48;
    AffineTraceSource trace(k, dims,
                            {Allocation{1, 0x100000, 64 << 20, "a"}});
    std::vector<MemAccess> buf;
    int64_t step = 0;
    for (auto _ : state) {
        buf.clear();
        trace.warpStep(100, 3, step++ % 48, buf);
        benchmark::DoNotOptimize(buf.size());
    }
}
BENCHMARK(BM_AffineWarpStep);

} // namespace
} // namespace ladm

BENCHMARK_MAIN();
