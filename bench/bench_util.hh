/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses.
 *
 * Every binary in bench/ regenerates one table or figure of the paper:
 * it runs the relevant (workload, policy, system) grid and prints the
 * same rows/series the paper reports. Absolute numbers differ from the
 * paper (cycle-approximate model, scaled inputs); the shapes are the
 * reproduction target (see EXPERIMENTS.md).
 *
 * LADM_BENCH_SCALE (default 1.0) scales every workload's linear size;
 * use e.g. 0.5 for a quick pass.
 *
 * Grids run through core::SweepRunner: `--jobs N` (or LADM_BENCH_JOBS,
 * default hardware concurrency) fans the independent experiments across
 * worker threads. Results, printed rows, and the CSV/JSON sinks are
 * identical at any worker count; tracing forces one worker.
 *
 * Robustness flags, stripped by parseJobsFlag() so every bench gets
 * them for free:
 *   --check               arm the ladm::check invariant suite (LADM_CHECK)
 *   --continue-on-error   a failing grid point becomes an error row in
 *                         the sinks and the sweep proceeds
 *                         (LADM_BENCH_CONTINUE)
 *   --resume-sweep[=path] journal completed cells (LADM_SWEEP_JOURNAL)
 *                         and, on re-run, replay them instead of
 *                         simulating; see core/sweep_journal.hh
 *   --checkpoint-every N / --checkpoint-out P / --resume P
 *                         mid-run checkpointing of the active
 *                         experiment; see snapshot/snapshot.hh
 */

#ifndef LADM_BENCH_BENCH_UTIL_HH
#define LADM_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <cstring>

#include "check/invariants.hh"
#include "common/atomic_file.hh"
#include "config/presets.hh"
#include "core/experiment.hh"
#include "core/sweep_journal.hh"
#include "core/sweep_runner.hh"
#include "snapshot/snapshot.hh"
#include "telemetry/json_writer.hh"
#include "telemetry/session.hh"
#include "workloads/registry.hh"

namespace ladm
{
namespace bench
{

/**
 * Continue-on-error mode (--continue-on-error / LADM_BENCH_CONTINUE):
 * runGrid() records a failing cell's error in its RunMetrics row instead
 * of rethrowing.
 */
inline bool &
continueOnError()
{
    static bool on = [] {
        const char *v = std::getenv("LADM_BENCH_CONTINUE");
        return v && *v && std::strcmp(v, "0") != 0;
    }();
    return on;
}

inline double
benchScale()
{
    const char *s = std::getenv("LADM_BENCH_SCALE");
    return s ? std::atof(s) : 1.0;
}

/** Run one (workload, policy, system) combination at the bench scale. */
inline RunMetrics
run(const std::string &workload, Policy policy, const SystemConfig &cfg)
{
    auto w = workloads::makeWorkload(workload, benchScale());
    return runExperiment(*w, policy, cfg);
}

/**
 * Parse and strip "--jobs N" / "--jobs=N" from the command line, plus
 * the robustness flags "--check" (arms the invariant suite) and
 * "--continue-on-error" (error rows instead of sweep death).
 *
 * Also configures the telemetry session from the LADM_* environment, so
 * every bench honors LADM_TIMELINE_OUT / LADM_OBS_ATTRIBUTION /
 * LADM_OBS_HEATMAP etc. without its own flag plumbing — with obs armed,
 * the latency columns of the CSV/JSON sinks carry real percentiles.
 *
 * @return the requested worker count, 0 when absent (= resolve from
 *         LADM_BENCH_JOBS, then hardware concurrency).
 */
inline int
parseJobsFlag(int &argc, char **argv)
{
    telemetry::session().configure(TelemetryOptions::fromEnv());
    // Checkpoint/resume flags (--checkpoint-every / --checkpoint-out /
    // --resume) are stripped here too, so every bench is killable and
    // resumable without per-binary plumbing.
    snapshot::parseArgs(argc, argv);
    int jobs = 0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = std::atoi(argv[++i]);
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            jobs = std::atoi(argv[i] + 7);
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check::setEnabled(true);
        } else if (std::strcmp(argv[i], "--continue-on-error") == 0) {
            continueOnError() = true;
        } else if (std::strcmp(argv[i], "--resume-sweep") == 0) {
            core::setSweepJournalPath("ladm.sweep.jnl");
        } else if (std::strncmp(argv[i], "--resume-sweep=", 15) == 0) {
            core::setSweepJournalPath(argv[i] + 15);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return jobs;
}

/** One grid cell at the bench scale (SweepCell factory). */
inline core::SweepCell
cell(std::string workload, Policy policy, SystemConfig cfg,
     int launches = 1)
{
    core::SweepCell c;
    c.workload = std::move(workload);
    c.policy = policy;
    c.cfg = std::move(cfg);
    c.launches = launches;
    c.scale = benchScale();
    return c;
}

/**
 * Run a grid of cells across @p jobs workers (0 = env/hardware), with
 * results back in cell order so the caller's print/sink loops see the
 * serial sequence. The worker notice goes to stderr: stdout rows and
 * the sinks stay byte-identical at any worker count.
 */
inline std::vector<RunMetrics>
runGrid(const std::vector<core::SweepCell> &cells, int jobs = 0)
{
    core::SweepRunner::Options opts;
    opts.jobs = jobs;
    core::SweepRunner runner(opts);
    if (runner.jobs() > 1) {
        std::fprintf(stderr, "[bench] %zu runs across %d workers\n",
                     cells.size(), runner.jobs());
    }
    core::SweepJournal *jnl = core::sweepJournal();
    for (size_t i = 0; i < cells.size(); ++i) {
        const core::SweepCell &c = cells[i];
        const std::string key =
            jnl ? core::cellKey(c, i) : std::string();
        runner.submit([c, jnl, key] {
            if (jnl) {
                // --resume-sweep: completed cells replay their journaled
                // metrics; cells in flight at the kill re-run.
                if (const RunMetrics *m = jnl->completed(key))
                    return *m;
                jnl->noteStart(key);
            }
            auto w = workloads::makeWorkload(c.workload, c.scale);
            auto bundle = makeBundle(c.policy);
            RunMetrics m = runExperiment(*w, *bundle, c.cfg, c.launches);
            if (jnl)
                jnl->noteDone(key, m);
            return m;
        });
    }
    if (!continueOnError())
        return runner.results();

    std::vector<RunMetrics> out = runner.outcomes();
    for (size_t i = 0; i < out.size(); ++i) {
        if (!out[i].failed())
            continue;
        // Identify the failed cell even though runExperiment never got
        // to stamp the labels.
        if (out[i].workload.empty())
            out[i].workload = cells[i].workload;
        if (out[i].system.empty())
            out[i].system = cells[i].cfg.name;
        std::fprintf(stderr, "[bench] cell %zu (%s on %s) failed: %s\n",
                     i, out[i].workload.c_str(), out[i].system.c_str(),
                     out[i].error.c_str());
    }
    return out;
}

// Cross-workload aggregation uses the NaN-safe ladm::geomean / ladm::mean
// from core/metrics.hh (previously a private copy lived here).

/**
 * Guarded rate: @p count events over @p seconds of wall time, as a
 * finite events-per-second figure. A grid point that runs zero warp
 * steps (an empty workload at a tiny LADM_BENCH_SCALE) or completes
 * under the clock's resolution must report 0, not NaN/inf -- a non-finite
 * rate poisons every downstream aggregate and the JSON sinks.
 */
inline double
safeRate(double count, double seconds)
{
    if (!(seconds > 0.0) || !std::isfinite(seconds) ||
        !std::isfinite(count) || count <= 0.0)
        return 0.0;
    const double rate = count / seconds;
    return std::isfinite(rate) ? rate : 0.0;
}

/** The locality-class section labels of Figs. 9/10, in Table IV order. */
inline const std::vector<std::pair<std::string, std::vector<std::string>>> &
workloadSections()
{
    static const std::vector<std::pair<std::string, std::vector<std::string>>>
        sections = {
            {"NL",
             {"VecAdd", "SRAD", "HS", "ScalarProd", "BLK", "Histo-final",
              "Reduction-k6", "Hotspot3D"}},
            {"RCL",
             {"CONV", "Histo-main", "FWT-k2", "SQ-GEMM", "Alexnet-FC-2",
              "VGGnet-FC-2", "Resnet-50-FC", "LSTM-1", "LSTM-2", "TRA"}},
            {"ITL",
             {"PageRank", "BFS-relax", "SSSP", "Random-loc",
              "Kmeans-noTex", "SpMV-jds"}},
            {"Unclassified", {"B+tree", "LBM", "StreamCluster"}},
        };
    return sections;
}

/** A faster subset used by the bandwidth-sensitivity sweep. */
inline std::vector<std::string>
representativeWorkloads()
{
    return {"VecAdd",  "SRAD",    "ScalarProd", "CONV",     "SQ-GEMM",
            "FWT-k2",  "LSTM-2",  "PageRank",   "Kmeans-noTex",
            "B+tree"};
}

/**
 * Optional machine-readable sink: when LADM_BENCH_CSV names a directory,
 * every run() result is appended to <dir>/<bench>.csv.
 */
class CsvSink
{
  public:
    explicit CsvSink(const std::string &bench_name)
    {
        const char *dir = std::getenv("LADM_BENCH_CSV");
        if (!dir)
            return;
        path_ = std::string(dir) + "/" + bench_name + ".csv";
        body_ = csvHeader() + "\n";
        if (!atomicWriteBytes(path_, body_))
            path_.clear();
    }

    /**
     * Republish the whole file after every run (atomic replace, not
     * append): a kill between runs leaves a complete, parseable CSV of
     * the rows so far instead of a torn final line.
     */
    void
    add(const RunMetrics &m)
    {
        if (path_.empty())
            return;
        body_ += csvRow(m) + "\n";
        atomicWriteBytes(path_, body_);
    }

  private:
    std::string path_;
    std::string body_;
};

/**
 * Machine-readable bench results: collects every run() result and writes
 * BENCH_<bench>.json in the working directory at destruction. Always on
 * (the file is the bench's canonical machine-readable output); the
 * document is "ladm-bench-v1" with one entry per run including the
 * per-node local/remote fetch breakdown.
 */
class BenchJsonSink
{
  public:
    explicit BenchJsonSink(std::string bench_name)
        : bench_(std::move(bench_name))
    {
    }

    BenchJsonSink(const BenchJsonSink &) = delete;
    BenchJsonSink &operator=(const BenchJsonSink &) = delete;

    void add(const RunMetrics &m) { runs_.push_back(m); }

    ~BenchJsonSink() { write(); }

    void
    write()
    {
        if (written_)
            return;
        written_ = true;
        const std::string path = "BENCH_" + bench_ + ".json";
        // Build in memory, publish atomically: downstream parsers (CI
        // gates, ladm-report) never see a torn document.
        std::ostringstream os;
        telemetry::JsonWriter w(os, 1);
        w.beginObject();
        w.kv("schema", "ladm-bench-v1");
        w.kv("bench", bench_);
        w.kv("scale", benchScale());
        w.key("runs");
        w.beginArray();
        uint64_t total_cycles = 0, total_local = 0, total_remote = 0;
        uint64_t failed_runs = 0;
        for (const RunMetrics &m : runs_) {
            total_cycles += m.cycles;
            total_local += m.fetchLocal;
            total_remote += m.fetchRemote;
            if (m.failed())
                ++failed_runs;
            w.beginObject();
            w.kv("workload", m.workload);
            w.kv("policy", m.policy);
            w.kv("system", m.system);
            w.kv("scheduler", m.scheduler);
            w.kv("insert_policy", toString(m.insertPolicy));
            w.kv("cycles", static_cast<double>(m.cycles));
            w.kv("tb_count", static_cast<double>(m.tbCount));
            w.kv("sector_accesses",
                 static_cast<double>(m.sectorAccesses));
            w.kv("fetch_local", static_cast<double>(m.fetchLocal));
            w.kv("fetch_remote", static_cast<double>(m.fetchRemote));
            w.key("node_fetch_local");
            w.beginArray();
            for (const uint64_t v : m.nodeFetchLocal)
                w.value(static_cast<double>(v));
            w.endArray();
            w.key("node_fetch_remote");
            w.beginArray();
            for (const uint64_t v : m.nodeFetchRemote)
                w.value(static_cast<double>(v));
            w.endArray();
            w.kv("off_chip_pct", m.offChipPct);
            w.kv("inter_node_bytes",
                 static_cast<double>(m.interNodeBytes));
            w.kv("inter_gpu_bytes",
                 static_cast<double>(m.interGpuBytes));
            w.kv("l1_hit_rate", m.l1HitRate);
            w.kv("l2_hit_rate", m.l2HitRate);
            w.kv("l2_mpki", m.l2Mpki);
            if (m.rehomedPages || m.failedNodeAccesses) {
                w.kv("rehomed_pages",
                     static_cast<double>(m.rehomedPages));
                w.kv("failed_node_accesses",
                     static_cast<double>(m.failedNodeAccesses));
            }
            if (m.hasLatency) {
                w.key("latency");
                w.beginObject();
                for (size_t c = 0; c < obs::kNumLatComponents; ++c) {
                    const obs::LatSummary &s = m.latency[c];
                    if (s.samples == 0)
                        continue;
                    w.key(toString(static_cast<obs::LatComponent>(c)));
                    w.beginObject();
                    w.kv("samples", static_cast<double>(s.samples));
                    w.kv("mean", s.mean);
                    w.kv("p50", s.p50);
                    w.kv("p95", s.p95);
                    w.kv("p99", s.p99);
                    w.kv("max", s.max);
                    w.endObject();
                }
                w.endObject();
            }
            if (m.failed())
                w.kv("error", m.error);
            w.endObject();
        }
        w.endArray();
        w.key("summary");
        w.beginObject();
        w.kv("num_runs", static_cast<double>(runs_.size()));
        w.kv("failed_runs", static_cast<double>(failed_runs));
        w.kv("total_cycles", static_cast<double>(total_cycles));
        w.kv("total_fetch_local", static_cast<double>(total_local));
        w.kv("total_fetch_remote", static_cast<double>(total_remote));
        w.endObject();
        w.endObject();
        os << '\n';
        if (!atomicWriteBytes(path, os.str()))
            return;
        std::printf("[bench] wrote %s (%zu runs)\n", path.c_str(),
                    runs_.size());
    }

  private:
    std::string bench_;
    std::vector<RunMetrics> runs_;
    bool written_ = false;
};

inline void
printHeaderLine(const std::string &title)
{
    std::printf("%s\n", std::string(78, '=').c_str());
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", std::string(78, '=').c_str());
}

} // namespace bench
} // namespace ladm

#endif // LADM_BENCH_BENCH_UTIL_HH
