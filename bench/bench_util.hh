/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses.
 *
 * Every binary in bench/ regenerates one table or figure of the paper:
 * it runs the relevant (workload, policy, system) grid and prints the
 * same rows/series the paper reports. Absolute numbers differ from the
 * paper (cycle-approximate model, scaled inputs); the shapes are the
 * reproduction target (see EXPERIMENTS.md).
 *
 * LADM_BENCH_SCALE (default 1.0) scales every workload's linear size;
 * use e.g. 0.5 for a quick pass.
 */

#ifndef LADM_BENCH_BENCH_UTIL_HH
#define LADM_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "config/presets.hh"
#include "core/experiment.hh"
#include "workloads/registry.hh"

namespace ladm
{
namespace bench
{

inline double
benchScale()
{
    const char *s = std::getenv("LADM_BENCH_SCALE");
    return s ? std::atof(s) : 1.0;
}

/** Run one (workload, policy, system) combination at the bench scale. */
inline RunMetrics
run(const std::string &workload, Policy policy, const SystemConfig &cfg)
{
    auto w = workloads::makeWorkload(workload, benchScale());
    return runExperiment(*w, policy, cfg);
}

inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (const double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

/** The locality-class section labels of Figs. 9/10, in Table IV order. */
inline const std::vector<std::pair<std::string, std::vector<std::string>>> &
workloadSections()
{
    static const std::vector<std::pair<std::string, std::vector<std::string>>>
        sections = {
            {"NL",
             {"VecAdd", "SRAD", "HS", "ScalarProd", "BLK", "Histo-final",
              "Reduction-k6", "Hotspot3D"}},
            {"RCL",
             {"CONV", "Histo-main", "FWT-k2", "SQ-GEMM", "Alexnet-FC-2",
              "VGGnet-FC-2", "Resnet-50-FC", "LSTM-1", "LSTM-2", "TRA"}},
            {"ITL",
             {"PageRank", "BFS-relax", "SSSP", "Random-loc",
              "Kmeans-noTex", "SpMV-jds"}},
            {"Unclassified", {"B+tree", "LBM", "StreamCluster"}},
        };
    return sections;
}

/** A faster subset used by the bandwidth-sensitivity sweep. */
inline std::vector<std::string>
representativeWorkloads()
{
    return {"VecAdd",  "SRAD",    "ScalarProd", "CONV",     "SQ-GEMM",
            "FWT-k2",  "LSTM-2",  "PageRank",   "Kmeans-noTex",
            "B+tree"};
}

/**
 * Optional machine-readable sink: when LADM_BENCH_CSV names a directory,
 * every run() result is appended to <dir>/<bench>.csv.
 */
class CsvSink
{
  public:
    explicit CsvSink(const std::string &bench_name)
    {
        const char *dir = std::getenv("LADM_BENCH_CSV");
        if (!dir)
            return;
        path_ = std::string(dir) + "/" + bench_name + ".csv";
        std::FILE *f = std::fopen(path_.c_str(), "w");
        if (!f) {
            path_.clear();
            return;
        }
        std::fprintf(f, "%s\n", csvHeader().c_str());
        std::fclose(f);
    }

    void
    add(const RunMetrics &m) const
    {
        if (path_.empty())
            return;
        std::FILE *f = std::fopen(path_.c_str(), "a");
        if (!f)
            return;
        std::fprintf(f, "%s\n", csvRow(m).c_str());
        std::fclose(f);
    }

  private:
    std::string path_;
};

inline void
printHeaderLine(const std::string &title)
{
    std::printf("%s\n", std::string(78, '=').c_str());
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", std::string(78, '=').c_str());
}

} // namespace bench
} // namespace ladm

#endif // LADM_BENCH_BENCH_UTIL_HH
