/**
 * @file
 * Section II quantified: the arguments that motivate a proactive,
 * static-analysis-driven design.
 *
 *   (a) Reactive page migration (the CPU-NUMA playbook) vs LADM's
 *       proactive placement.
 *   (b) First-touch paging with realistic 20-50us fault costs vs the
 *       zero-cost "Batch+FT-optimal" idealization used in Fig. 4.
 *   (c) The kernel-boundary L2 flush of software coherence [51] vs an
 *       HMG-style hardware-coherent hierarchy [66] (one of the paper's
 *       three reasons for the residual gap to monolithic).
 *   (d) CODA with its proposed sub-page interleaving hardware vs the
 *       page-granularity placement LASP restricts itself to.
 */

#include "bench_util.hh"

using namespace ladm;
using namespace ladm::bench;

int
benchMain(int argc, char **argv)
{
    const int jobs = parseJobsFlag(argc, argv);

    printHeaderLine("Motivation studies (Section II)");
    const SystemConfig multi = presets::multiGpu4x4();

    SystemConfig migrate = multi;
    migrate.pageMigration = true;
    migrate.name = "multi-gpu-4x4+migration";

    SystemConfig faulty = multi;
    faulty.pageFaultCycles = 28000;
    faulty.name = "multi-gpu-4x4+faults";

    SystemConfig hw = multi;
    hw.flushL2BetweenKernels = false;
    hw.name = "multi-gpu-4x4+hmg";

    // All four sections as one grid, in print order.
    const std::vector<std::string> a_names = {"SQ-GEMM", "CONV",
                                              "PageRank"};
    const std::vector<std::string> b_names = {"VecAdd", "ScalarProd"};
    const std::vector<std::string> c_names = {"SQ-GEMM", "PageRank"};
    const std::vector<std::string> d_names = {"VecAdd", "Histo-final",
                                              "SQ-GEMM"};
    std::vector<core::SweepCell> cells;
    for (const auto &name : a_names) {
        cells.push_back(cell(name, Policy::BatchFt, multi));
        cells.push_back(cell(name, Policy::BatchFt, migrate));
        cells.push_back(cell(name, Policy::Ladm, multi));
    }
    for (const auto &name : b_names) {
        cells.push_back(cell(name, Policy::BatchFt, multi));
        cells.push_back(cell(name, Policy::BatchFt, faulty));
        cells.push_back(cell(name, Policy::Ladm, faulty));
    }
    for (const auto &name : c_names) {
        cells.push_back(cell(name, Policy::Ladm, multi, /*launches=*/3));
        cells.push_back(cell(name, Policy::Ladm, hw, /*launches=*/3));
    }
    for (const auto &name : d_names) {
        cells.push_back(cell(name, Policy::Coda, multi));
        cells.push_back(cell(name, Policy::CodaSubPage, multi));
        cells.push_back(cell(name, Policy::Ladm, multi));
    }
    const std::vector<RunMetrics> results = runGrid(cells, jobs);
    size_t i = 0;

    std::printf("\n(a) proactive vs reactive: first-touch + page "
                "migration vs LADM\n");
    std::printf("%-14s %12s %12s %12s\n", "workload", "first-touch",
                "ft+migrate", "LADM");
    for (const std::string &name : a_names) {
        const RunMetrics &ft = results[i++];
        const RunMetrics &mg = results[i++];
        const RunMetrics &la = results[i++];
        std::printf("%-14s %12llu %12llu %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(ft.cycles),
                    static_cast<unsigned long long>(mg.cycles),
                    static_cast<unsigned long long>(la.cycles));
        std::fflush(stdout);
    }

    std::printf("\n(b) UVM first-touch fault cost (paper: 20-50us SM "
                "stalls [85]; 28k cycles = 20us @1.4GHz)\n");
    std::printf("%-14s %14s %14s %12s\n", "workload", "FT optimal",
                "FT 20us/fault", "LADM (0 faults)");
    for (const std::string &name : b_names) {
        const RunMetrics &opt = results[i++];
        const RunMetrics &real = results[i++];
        const RunMetrics &la = results[i++];
        std::printf("%-14s %14llu %14llu %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(opt.cycles),
                    static_cast<unsigned long long>(real.cycles),
                    static_cast<unsigned long long>(la.cycles));
        std::fflush(stdout);
    }

    std::printf("\n(c) software L2 coherence flush vs hardware coherence "
                "(3 back-to-back launches)\n");
    std::printf("%-14s %14s %14s %9s\n", "workload", "flush (sw)",
                "no flush (hw)", "benefit");
    for (const std::string &name : c_names) {
        const RunMetrics &sw_m = results[i++];
        const RunMetrics &hw_m = results[i++];
        std::printf("%-14s %14llu %14llu %8.2fx\n", name.c_str(),
                    static_cast<unsigned long long>(sw_m.cycles),
                    static_cast<unsigned long long>(hw_m.cycles),
                    static_cast<double>(sw_m.cycles) / hw_m.cycles);
        std::fflush(stdout);
    }

    std::printf("\n(d) CODA's sub-page interleaving hardware vs "
                "page-granularity placement\n");
    std::printf("%-14s %12s %14s %12s | off-chip\n", "workload", "H-CODA",
                "CODA-subpage", "LADM");
    for (const std::string &name : d_names) {
        const RunMetrics &hc = results[i++];
        const RunMetrics &sp = results[i++];
        const RunMetrics &la = results[i++];
        std::printf("%-14s %12llu %14llu %12llu | %4.1f%% / %4.1f%% / "
                    "%4.1f%%\n",
                    name.c_str(),
                    static_cast<unsigned long long>(hc.cycles),
                    static_cast<unsigned long long>(sp.cycles),
                    static_cast<unsigned long long>(la.cycles),
                    hc.offChipPct, sp.offChipPct, la.offChipPct);
        std::fflush(stdout);
    }

    return 0;
}

int
main(int argc, char **argv)
{
    // snapshot::runMain maps a graceful SIGINT/SIGTERM stop (checkpoint
    // flushed at the engine's safe point) to exit 75 and lets the
    // telemetry atexit finalizer publish partial sinks.
    return ladm::snapshot::runMain([&] { return benchMain(argc, argv); });
}
