/**
 * @file
 * Section II quantified: the arguments that motivate a proactive,
 * static-analysis-driven design.
 *
 *   (a) Reactive page migration (the CPU-NUMA playbook) vs LADM's
 *       proactive placement.
 *   (b) First-touch paging with realistic 20-50us fault costs vs the
 *       zero-cost "Batch+FT-optimal" idealization used in Fig. 4.
 *   (c) The kernel-boundary L2 flush of software coherence [51] vs an
 *       HMG-style hardware-coherent hierarchy [66] (one of the paper's
 *       three reasons for the residual gap to monolithic).
 *   (d) CODA with its proposed sub-page interleaving hardware vs the
 *       page-granularity placement LASP restricts itself to.
 */

#include "bench_util.hh"

using namespace ladm;
using namespace ladm::bench;

int
main()
{
    printHeaderLine("Motivation studies (Section II)");
    const SystemConfig multi = presets::multiGpu4x4();

    std::printf("\n(a) proactive vs reactive: first-touch + page "
                "migration vs LADM\n");
    SystemConfig migrate = multi;
    migrate.pageMigration = true;
    migrate.name = "multi-gpu-4x4+migration";
    std::printf("%-14s %12s %12s %12s\n", "workload", "first-touch",
                "ft+migrate", "LADM");
    for (const std::string name : {"SQ-GEMM", "CONV", "PageRank"}) {
        const auto ft = run(name, Policy::BatchFt, multi);
        const auto mg = run(name, Policy::BatchFt, migrate);
        const auto la = run(name, Policy::Ladm, multi);
        std::printf("%-14s %12llu %12llu %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(ft.cycles),
                    static_cast<unsigned long long>(mg.cycles),
                    static_cast<unsigned long long>(la.cycles));
        std::fflush(stdout);
    }

    std::printf("\n(b) UVM first-touch fault cost (paper: 20-50us SM "
                "stalls [85]; 28k cycles = 20us @1.4GHz)\n");
    std::printf("%-14s %14s %14s %12s\n", "workload", "FT optimal",
                "FT 20us/fault", "LADM (0 faults)");
    for (const std::string name : {"VecAdd", "ScalarProd"}) {
        SystemConfig faulty = multi;
        faulty.pageFaultCycles = 28000;
        faulty.name = "multi-gpu-4x4+faults";
        const auto opt = run(name, Policy::BatchFt, multi);
        const auto real = run(name, Policy::BatchFt, faulty);
        const auto la = run(name, Policy::Ladm, faulty);
        std::printf("%-14s %14llu %14llu %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(opt.cycles),
                    static_cast<unsigned long long>(real.cycles),
                    static_cast<unsigned long long>(la.cycles));
        std::fflush(stdout);
    }

    std::printf("\n(c) software L2 coherence flush vs hardware coherence "
                "(3 back-to-back launches)\n");
    SystemConfig hw = multi;
    hw.flushL2BetweenKernels = false;
    hw.name = "multi-gpu-4x4+hmg";
    std::printf("%-14s %14s %14s %9s\n", "workload", "flush (sw)",
                "no flush (hw)", "benefit");
    for (const std::string name : {"SQ-GEMM", "PageRank"}) {
        auto w1 = workloads::makeWorkload(name, benchScale());
        auto w2 = workloads::makeWorkload(name, benchScale());
        auto b1 = makeBundle(Policy::Ladm);
        auto b2 = makeBundle(Policy::Ladm);
        const auto sw_m = runExperiment(*w1, *b1, multi, /*launches=*/3);
        const auto hw_m = runExperiment(*w2, *b2, hw, /*launches=*/3);
        std::printf("%-14s %14llu %14llu %8.2fx\n", name.c_str(),
                    static_cast<unsigned long long>(sw_m.cycles),
                    static_cast<unsigned long long>(hw_m.cycles),
                    static_cast<double>(sw_m.cycles) / hw_m.cycles);
        std::fflush(stdout);
    }

    std::printf("\n(d) CODA's sub-page interleaving hardware vs "
                "page-granularity placement\n");
    std::printf("%-14s %12s %14s %12s | off-chip\n", "workload", "H-CODA",
                "CODA-subpage", "LADM");
    for (const std::string name : {"VecAdd", "Histo-final", "SQ-GEMM"}) {
        const auto hc = run(name, Policy::Coda, multi);
        const auto sp = run(name, Policy::CodaSubPage, multi);
        const auto la = run(name, Policy::Ladm, multi);
        std::printf("%-14s %12llu %14llu %12llu | %4.1f%% / %4.1f%% / "
                    "%4.1f%%\n",
                    name.c_str(),
                    static_cast<unsigned long long>(hc.cycles),
                    static_cast<unsigned long long>(sp.cycles),
                    static_cast<unsigned long long>(la.cycles),
                    hc.offChipPct, sp.offChipPct, la.offChipPct);
        std::fflush(stdout);
    }

    return 0;
}
