/**
 * @file
 * Fig. 4: bandwidth sensitivity of the state-of-the-art techniques.
 *
 * Four-node NUMA systems (64 SMs per node) under five interconnects --
 * NVSwitch-like crossbars at 90/180/360 GB/s per link and MCM-style rings
 * at 1.4/2.8 TB/s per GPU -- running Baseline-RR [79], Batch+FT-optimal
 * [5], kernel-wide partitioning [51], and CODA [36]. Each bar is the
 * geometric-mean performance over the workload set, normalized to a
 * hypothetical monolithic GPU with the same 256 SMs.
 */

#include "bench_util.hh"

using namespace ladm;
using namespace ladm::bench;

int
benchMain(int argc, char **argv)
{
    const int jobs = parseJobsFlag(argc, argv);

    printHeaderLine("Fig. 4 -- bandwidth sensitivity of prior NUMA-GPU "
                    "techniques (vs monolithic)");

    struct Point
    {
        std::string name;
        SystemConfig cfg;
    };
    std::vector<Point> points;
    for (const double gbs : {90.0, 180.0, 360.0})
        points.push_back({"xbar-" + std::to_string(int(gbs)) + "GB/s",
                          presets::multiGpuFlat(4, gbs)});
    for (const double gbs : {1400.0, 2800.0})
        points.push_back({"ring-" + std::to_string(gbs / 1000.0).substr(0, 3) +
                              "TB/s",
                          presets::mcmRing(4, gbs)});

    const std::vector<std::pair<std::string, Policy>> policies = {
        {"Baseline-RR", Policy::BaselineRr},
        {"Batch+FT-opt", Policy::BatchFt},
        {"Kernel-wide", Policy::KernelWide},
        {"CODA", Policy::Coda},
    };

    const auto names = representativeWorkloads();
    const SystemConfig mono = presets::monolithic256();

    // One grid: monolithic references first, then every
    // (config, policy, workload) cell in print order.
    std::vector<core::SweepCell> cells;
    for (const auto &w : names)
        cells.push_back(cell(w, Policy::KernelWide, mono));
    for (const auto &pt : points)
        for (const auto &[pname, p] : policies)
            for (const auto &w : names)
                cells.push_back(cell(w, p, pt.cfg));
    const std::vector<RunMetrics> results = runGrid(cells, jobs);

    std::vector<Cycles> mono_cycles;
    for (size_t i = 0; i < names.size(); ++i)
        mono_cycles.push_back(results[i].cycles);

    std::printf("%-16s", "config");
    for (const auto &[pname, p] : policies)
        std::printf(" %14s", pname.c_str());
    std::printf("\n");

    size_t idx = names.size();
    for (const auto &pt : points) {
        std::printf("%-16s", pt.name.c_str());
        for (const auto &[pname, p] : policies) {
            std::vector<double> rel;
            for (size_t i = 0; i < names.size(); ++i) {
                const RunMetrics &m = results[idx++];
                rel.push_back(static_cast<double>(mono_cycles[i]) /
                              m.cycles);
            }
            std::printf(" %14.3f", geomean(rel));
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    std::printf("\npaper shape: every technique improves with bandwidth;"
                "\n  CODA leads the pack but stays well below 1.0 on the"
                "\n  cheap interconnects (52%% at xbar-90, ~80%% at "
                "ring-1.4T).\n");
    return 0;
}

int
main(int argc, char **argv)
{
    // snapshot::runMain maps a graceful SIGINT/SIGTERM stop (checkpoint
    // flushed at the engine's safe point) to exit 75 and lets the
    // telemetry atexit finalizer publish partial sinks.
    return ladm::snapshot::runMain([&] { return benchMain(argc, argv); });
}
