/**
 * @file
 * Section IV-A observation: "enabling remote caching improves
 * performance of GEMM operations by 4.8x on average, reducing off-chip
 * traffic by 4x". Runs the GEMM family with the dynamic shared L2's
 * remote caching on and off.
 */

#include "bench_util.hh"

using namespace ladm;
using namespace ladm::bench;

int
benchMain(int argc, char **argv)
{
    const int jobs = parseJobsFlag(argc, argv);

    printHeaderLine("Remote-caching ablation -- dynamic shared L2 [51] "
                    "on vs off (GEMM family)");

    SystemConfig with = presets::multiGpu4x4();
    SystemConfig without = presets::multiGpu4x4();
    without.remoteCachingL2 = false;
    without.name = "multi-gpu-4x4-noRC";

    const std::vector<std::string> gemms = {"SQ-GEMM", "Alexnet-FC-2",
                                            "VGGnet-FC-2", "LSTM-1"};

    std::vector<core::SweepCell> cells;
    for (const auto &name : gemms) {
        cells.push_back(cell(name, Policy::Coda, without));
        cells.push_back(cell(name, Policy::Coda, with));
    }
    const std::vector<RunMetrics> results = runGrid(cells, jobs);

    std::printf("%-14s %12s %12s %9s | %12s %12s %9s\n", "workload",
                "cyc (off)", "cyc (on)", "speedup", "remote(off)",
                "remote(on)", "traffic");

    std::vector<double> speedup, traffic;
    size_t i = 0;
    for (const auto &name : gemms) {
        const RunMetrics &off = results[i++];
        const RunMetrics &on = results[i++];
        const double s = static_cast<double>(off.cycles) / on.cycles;
        const double t = on.fetchRemote
                             ? static_cast<double>(off.fetchRemote) /
                                   on.fetchRemote
                             : 0.0;
        speedup.push_back(s);
        traffic.push_back(t);
        std::printf("%-14s %12llu %12llu %8.2fx | %12llu %12llu %8.2fx\n",
                    name.c_str(),
                    static_cast<unsigned long long>(off.cycles),
                    static_cast<unsigned long long>(on.cycles), s,
                    static_cast<unsigned long long>(off.fetchRemote),
                    static_cast<unsigned long long>(on.fetchRemote), t);
        std::fflush(stdout);
    }

    std::printf("\nGEOMEAN speedup %.2fx (paper: 4.8x), traffic cut "
                "%.2fx (paper: 4x)\n",
                geomean(speedup), geomean(traffic));
    return 0;
}

int
main(int argc, char **argv)
{
    // snapshot::runMain maps a graceful SIGINT/SIGTERM stop (checkpoint
    // flushed at the engine's safe point) to exit 75 and lets the
    // telemetry atexit finalizer publish partial sinks.
    return ladm::snapshot::runMain([&] { return benchMain(argc, argv); });
}
