/**
 * @file
 * Design-choice ablations called out in DESIGN.md:
 *   (a) input-size-aware tie-break on/off (Section III-D2);
 *   (b) RONCE forced onto RCL workloads (the ~8% RTWICE win the paper
 *       reports, which motivates CRB);
 *   (c) hierarchical topology vs a flat crossbar with the same aggregate
 *       inter-node bandwidth;
 *   (d) warp pipeline depth (engine modeling knob).
 */

#include "bench_util.hh"

#include "runtime/ladm_runtime.hh"
#include "sim/gpu_system.hh"

using namespace ladm;
using namespace ladm::bench;

namespace
{

/** Run LADM with the tie-break ablated. */
RunMetrics
runNoTieBreak(const std::string &name, const SystemConfig &cfg)
{
    auto w = workloads::makeWorkload(name, benchScale());
    GpuSystem sys(cfg);
    MallocRegistry reg(cfg.pageSize);
    w->allocateAll(reg);
    LadmRuntime runtime(cfg);
    runtime.setTieBreakLargest(false);
    runtime.compile(w->kernel());
    const auto plan = runtime.prepareLaunch(
        w->kernel(), w->dims(), w->argPcs(), reg, sys.mem().pageTable());
    auto trace = w->makeTrace(reg);
    const auto ks = sys.runKernel(w->dims(), *trace,
                                  plan.scheduler->assign(w->dims(), cfg),
                                  plan.policy);
    RunMetrics m;
    m.cycles = ks.cycles();
    m.scheduler = plan.scheduler->name();
    return m;
}

} // namespace

int
benchMain(int argc, char **argv)
{
    const int jobs = parseJobsFlag(argc, argv);

    printHeaderLine("Ablations");
    const SystemConfig multi = presets::multiGpu4x4();
    SystemConfig flat = presets::multiGpuFlat(4, 180.0);

    // Everything -- standard cells and the custom tie-break ablation --
    // goes through one runner; results come back in submission order.
    core::SweepRunner::Options opts;
    opts.jobs = jobs;
    core::SweepRunner runner(opts);
    auto submitCell = [&](const core::SweepCell &c) {
        runner.submit([c] {
            auto w = workloads::makeWorkload(c.workload, c.scale);
            auto bundle = makeBundle(c.policy);
            return runExperiment(*w, *bundle, c.cfg, c.launches);
        });
    };

    const std::vector<std::string> a_names = {"Alexnet-FC-2", "LSTM-1"};
    const std::vector<std::string> b_names = {"SQ-GEMM", "CONV",
                                              "Alexnet-FC-2"};
    const std::vector<std::string> c_names = {"SQ-GEMM", "PageRank"};
    const std::vector<std::string> d_names = {"SQ-GEMM", "VecAdd"};

    for (const std::string &name : a_names) {
        submitCell(cell(name, Policy::LaspRtwice, multi));
        runner.submit([name, multi] { return runNoTieBreak(name, multi); });
    }
    for (const std::string &name : b_names) {
        submitCell(cell(name, Policy::LaspRtwice, multi));
        submitCell(cell(name, Policy::LaspRonce, multi));
    }
    for (const std::string &name : c_names) {
        submitCell(cell(name, Policy::Ladm, multi));
        submitCell(cell(name, Policy::Ladm, flat));
    }
    for (const std::string &name : d_names) {
        for (const int d : {1, 2, 3}) {
            SystemConfig cfg = presets::multiGpu4x4();
            cfg.warpPipelineDepth = d;
            submitCell(cell(name, Policy::Ladm, cfg));
        }
    }
    const std::vector<RunMetrics> results = runner.results();
    size_t i = 0;

    std::printf("\n(a) input-size-aware tie-break (DL GEMMs; B is the "
                "large matrix)\n");
    std::printf("%-14s %14s %16s %9s\n", "workload", "with (sched)",
                "without (sched)", "benefit");
    for (const std::string &name : a_names) {
        const RunMetrics &with = results[i++];
        const RunMetrics &without = results[i++];
        std::printf("%-14s %8llu %-5s %8llu %-7s %8.2fx\n", name.c_str(),
                    static_cast<unsigned long long>(with.cycles),
                    with.scheduler.substr(0, 5).c_str(),
                    static_cast<unsigned long long>(without.cycles),
                    without.scheduler.substr(0, 7).c_str(),
                    static_cast<double>(without.cycles) / with.cycles);
        std::fflush(stdout);
    }

    std::printf("\n(b) RONCE forced onto RCL workloads (CRB's reason to "
                "exist; paper: RTWICE ~8%% better there)\n");
    std::printf("%-14s %12s %12s %10s\n", "workload", "RTWICE", "RONCE",
                "RT/RO");
    std::vector<double> rt_vs_ro;
    for (const std::string &name : b_names) {
        const RunMetrics &rt = results[i++];
        const RunMetrics &ro = results[i++];
        rt_vs_ro.push_back(static_cast<double>(ro.cycles) / rt.cycles);
        std::printf("%-14s %12llu %12llu %9.2fx\n", name.c_str(),
                    static_cast<unsigned long long>(rt.cycles),
                    static_cast<unsigned long long>(ro.cycles),
                    rt_vs_ro.back());
        std::fflush(stdout);
    }
    std::printf("geomean RTWICE advantage on RCL: %.2fx\n",
                geomean(rt_vs_ro));

    std::printf("\n(c) hierarchy: ring-of-chiplets + switch vs flat "
                "crossbar, same per-node DRAM\n");
    std::printf("%-14s %14s %14s\n", "workload", "hierarchical",
                "flat-4x64SM");
    for (const std::string &name : c_names) {
        const RunMetrics &h = results[i++];
        const RunMetrics &f = results[i++];
        std::printf("%-14s %14llu %14llu\n", name.c_str(),
                    static_cast<unsigned long long>(h.cycles),
                    static_cast<unsigned long long>(f.cycles));
        std::fflush(stdout);
    }

    std::printf("\n(d) warp pipeline depth (engine knob; default 3)\n");
    std::printf("%-14s %10s %10s %10s\n", "workload", "depth1",
                "depth2", "depth3");
    for (const std::string &name : d_names) {
        std::printf("%-14s", name.c_str());
        for (const int d : {1, 2, 3}) {
            (void)d;
            const RunMetrics &m = results[i++];
            std::printf(" %10llu",
                        static_cast<unsigned long long>(m.cycles));
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    return 0;
}

int
main(int argc, char **argv)
{
    // snapshot::runMain maps a graceful SIGINT/SIGTERM stop (checkpoint
    // flushed at the engine's safe point) to exit 75 and lets the
    // telemetry atexit finalizer publish partial sinks.
    return ladm::snapshot::runMain([&] { return benchMain(argc, argv); });
}
