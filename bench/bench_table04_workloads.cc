/**
 * @file
 * Table IV: workload characterization. For every workload: the locality
 * type the static analysis detects, the scheduler LADM's runtime
 * selects, the threadblock shape, total input size, launched TB count,
 * and the measured L2 MPKI on the 4x4 machine under LADM.
 */

#include "bench_util.hh"

#include "compiler/locality_table.hh"

using namespace ladm;
using namespace ladm::bench;

int
benchMain(int argc, char **argv)
{
    const int jobs = parseJobsFlag(argc, argv);

    printHeaderLine("Table IV -- workload characterization "
                    "(as built; inputs are scaled vs the paper)");

    const SystemConfig multi = presets::multiGpu4x4();

    // Dynamic side: one LADM run per workload for the MPKI column.
    const auto names = workloads::allWorkloadNames();
    std::vector<core::SweepCell> cells;
    for (const auto &name : names)
        cells.push_back(cell(name, Policy::Ladm, multi));
    const std::vector<RunMetrics> results = runGrid(cells, jobs);

    std::printf("%-14s %-12s %-16s %-9s %8s %9s %8s\n", "workload",
                "locality", "scheduler", "TB dim", "input MB",
                "launched", "L2 MPKI");

    size_t idx = 0;
    for (const auto &name : names) {
        auto w = workloads::makeWorkload(name, benchScale());

        // Static side: dominant classification via the runtime pipeline.
        auto bundle = makeBundle(Policy::Ladm);
        MallocRegistry reg;
        PageTable pt(multi.pageSize);
        w->allocateAll(reg);
        const auto plan = bundle->prepare(w->kernel(), w->dims(),
                                          w->argPcs(), reg, pt, multi);

        Bytes input = 0;
        for (const auto &a : w->allocs())
            input += a.size;

        const RunMetrics &m = results[idx++];

        char tbdim[24];
        std::snprintf(tbdim, sizeof(tbdim), "(%lld,%lld)",
                      static_cast<long long>(w->dims().block.x),
                      static_cast<long long>(w->dims().block.y));
        std::printf("%-14s %-12s %-16s %-9s %8.0f %9lld %8.0f\n",
                    name.c_str(), toString(w->expectedType()),
                    plan.scheduler->name().c_str(), tbdim,
                    static_cast<double>(input) / (1 << 20),
                    static_cast<long long>(w->dims().numTbs()), m.l2Mpki);
        std::fflush(stdout);
    }
    return 0;
}

int
main(int argc, char **argv)
{
    // snapshot::runMain maps a graceful SIGINT/SIGTERM stop (checkpoint
    // flushed at the engine's safe point) to exit 75 and lets the
    // telemetry atexit finalizer publish partial sinks.
    return ladm::snapshot::runMain([&] { return benchMain(argc, argv); });
}
