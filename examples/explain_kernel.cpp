/**
 * @file
 * `explain_kernel`: the LADM compiler as a command-line tool. Feed it a
 * kernel description (a file path, or nothing to analyze the built-in
 * Fig. 6 GEMM) and it prints the locality table, the Table II row of
 * every access, and the launch plan LASP would derive for a given grid.
 *
 *   ./build/examples/explain_kernel my_kernel.ladm [gdx gdy bdx bdy trips]
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "compiler/parser.hh"
#include "check/invariants.hh"
#include "snapshot/snapshot.hh"
#include "config/presets.hh"
#include "runtime/ladm_runtime.hh"

using namespace ladm;

namespace
{

const char *kDefaultKernel = R"(# Fig. 6: tiled dense matrix multiply.
kernel sgemm(A, B, C) {
    let W   = gridDim.x * blockDim.x;
    let Row = blockIdx.y * 16 + threadIdx.y;
    let Col = blockIdx.x * 16 + threadIdx.x;
    loop m {
        read A[Row * W + m * 16 + threadIdx.x] : f32;
        read B[(m * 16 + threadIdx.y) * W + Col] : f32;
    }
    write C[Row * W + Col] : f32;
}
)";

} // namespace

int
runExample(int argc, char **argv)
{
    std::string source = kDefaultKernel;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        source = ss.str();
    } else {
        std::printf("(no file given; explaining the built-in Fig. 6 "
                    "GEMM)\n\n%s\n", kDefaultKernel);
    }

    const KernelDesc kernel = parseKernel(source);

    LaunchDims dims;
    dims.grid = {argc > 2 ? std::atoll(argv[2]) : 44,
                 argc > 3 ? std::atoll(argv[3]) : 44};
    dims.block = {argc > 4 ? std::atoll(argv[4]) : 16,
                  argc > 5 ? std::atoll(argv[5]) : 16};
    dims.loopTrips = argc > 6 ? std::atoll(argv[6]) : 44;

    const SystemConfig sys = presets::multiGpu4x4();
    LadmRuntime runtime(sys);
    runtime.compile(kernel);

    std::printf("kernel '%s', %d args\n", kernel.name.c_str(),
                kernel.numArgs);
    std::printf("\nlocality table:\n");
    for (const auto &r : runtime.table().rows()) {
        std::printf("  arg%-2d %-28s %-12s (Table II row %d)  stride=%s\n",
                    r.arg, r.note.c_str(), toString(r.cls.type),
                    tableRow(r.cls.type),
                    r.cls.strideExpr.toString().c_str());
    }

    // Fabricate proportionally-sized allocations to preview the plan
    // (each argument sized by the span its accesses reach).
    MallocRegistry reg(sys.pageSize);
    std::vector<uint64_t> pcs;
    for (int a = 0; a < kernel.numArgs; ++a) {
        Bytes size = sys.pageSize;
        for (const auto &acc : kernel.accesses) {
            if (acc.arg != a || acc.index.dependsOn(Var::DataDep))
                continue;
            const Binding hi = dims.binding(
                dims.block.x - 1, dims.block.y - 1, dims.grid.x - 1,
                dims.grid.y - 1,
                dims.loopTrips > 0 ? dims.loopTrips - 1 : 0);
            const int64_t max_elem = acc.index.eval(hi) + 1;
            size = std::max<Bytes>(
                size, static_cast<Bytes>(max_elem) * acc.elemSize);
        }
        pcs.push_back(0x1000 + a);
        reg.mallocManaged(pcs.back(), size, "arg" + std::to_string(a));
    }

    PageTable pt(sys.pageSize);
    const LaunchPlan plan =
        runtime.prepareLaunch(kernel, dims, pcs, reg, pt);

    std::printf("\nlaunch plan for grid (%lld,%lld) block (%lld,%lld) "
                "trips %lld on %s:\n",
                static_cast<long long>(dims.grid.x),
                static_cast<long long>(dims.grid.y),
                static_cast<long long>(dims.block.x),
                static_cast<long long>(dims.block.y),
                static_cast<long long>(dims.loopTrips),
                sys.name.c_str());
    std::printf("  scheduler: %s  (%s)\n  L2 policy: %s\n",
                plan.scheduler->name().c_str(),
                plan.schedulerReason.c_str(), toString(plan.policy));
    for (const auto &n : plan.notes)
        std::printf("  placement: %s\n", n.c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    // --check arms the invariant suite; runMain renders a SimError as a
    // structured report instead of an unhandled-exception backtrace.
    ladm::check::parseArgs(argc, argv);
    ladm::snapshot::parseArgs(argc, argv);
    return ladm::snapshot::runMain([&] { return runExample(argc, argv); });
}
