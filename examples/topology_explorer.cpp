/**
 * @file
 * Topology explorer: the same workload under LADM across the machine
 * shapes the paper discusses -- monolithic, MCM-GPU package rings,
 * switch-connected multi-GPU, and the full hierarchical system --
 * showing how interconnect bandwidth and hierarchy shape the NUMA
 * penalty (the Fig. 4 design space, from the API).
 */

#include <cstdio>
#include <vector>

#include "config/presets.hh"
#include "core/experiment.hh"
#include "telemetry/session.hh"
#include "workloads/registry.hh"

using namespace ladm;

int
main(int argc, char **argv)
{
    telemetry::session().configure(
        TelemetryOptions::parseArgs(argc, argv));
    const std::string name = argc > 1 ? argv[1] : "SQ-GEMM";

    struct Shape
    {
        const char *label;
        SystemConfig cfg;
    };
    const std::vector<Shape> shapes = {
        {"monolithic 256 SMs", presets::monolithic256()},
        {"MCM ring 1.4 TB/s", presets::mcmRing(4, 1400.0)},
        {"MCM ring 2.8 TB/s", presets::mcmRing(4, 2800.0)},
        {"4-GPU xbar 90 GB/s", presets::multiGpuFlat(4, 90.0)},
        {"4-GPU xbar 360 GB/s", presets::multiGpuFlat(4, 360.0)},
        {"hierarchical 4x4", presets::multiGpu4x4()},
    };

    std::printf("%s under LADM across machine shapes\n\n", name.c_str());
    std::printf("%-22s %12s %9s %10s %12s\n", "machine", "cycles",
                "vs mono", "off-chip", "inter-GPU MB");

    Cycles mono = 0;
    for (const auto &s : shapes) {
        auto w = workloads::makeWorkload(name);
        const RunMetrics m = runExperiment(*w, Policy::Ladm, s.cfg);
        if (mono == 0)
            mono = m.cycles;
        std::printf("%-22s %12llu %8.2fx %9.1f%% %12.1f\n", s.label,
                    static_cast<unsigned long long>(m.cycles),
                    static_cast<double>(mono) / m.cycles, m.offChipPct,
                    m.interGpuBytes / 1e6);
        // Per-node local/remote balance shows *where* the NUMA penalty
        // lands on each machine shape, not just how big it is.
        std::printf("%-22s  local ", "");
        for (const uint64_t v : m.nodeFetchLocal)
            std::printf(" %7llu", static_cast<unsigned long long>(v));
        std::printf("\n%-22s  remote", "");
        for (const uint64_t v : m.nodeFetchRemote)
            std::printf(" %7llu", static_cast<unsigned long long>(v));
        std::printf("\n");
    }

    std::printf("\n(pass a Table IV workload name to explore another "
                "one, e.g. %s PageRank)\n", argv[0]);
    telemetry::session().finalize();
    return 0;
}
