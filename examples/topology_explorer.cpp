/**
 * @file
 * Topology explorer: the same workload under LADM across the machine
 * shapes the paper discusses -- monolithic, MCM-GPU package rings,
 * switch-connected multi-GPU, and the full hierarchical system --
 * showing how interconnect bandwidth and hierarchy shape the NUMA
 * penalty (the Fig. 4 design space, from the API).
 *
 * The six shapes run concurrently through core::SweepRunner
 * (--jobs N / LADM_BENCH_JOBS; tracing forces one worker).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/invariants.hh"
#include "snapshot/snapshot.hh"
#include "config/presets.hh"
#include "core/sweep_runner.hh"
#include "telemetry/session.hh"

using namespace ladm;

int
runExample(int argc, char **argv)
{
    telemetry::session().configure(
        TelemetryOptions::parseArgs(argc, argv));

    int jobs = 0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = std::atoi(argv[++i]);
        else if (std::strncmp(argv[i], "--jobs=", 7) == 0)
            jobs = std::atoi(argv[i] + 7);
        else
            argv[out++] = argv[i];
    }
    argc = out;
    const std::string name = argc > 1 ? argv[1] : "SQ-GEMM";

    struct Shape
    {
        const char *label;
        SystemConfig cfg;
    };
    const std::vector<Shape> shapes = {
        {"monolithic 256 SMs", presets::monolithic256()},
        {"MCM ring 1.4 TB/s", presets::mcmRing(4, 1400.0)},
        {"MCM ring 2.8 TB/s", presets::mcmRing(4, 2800.0)},
        {"4-GPU xbar 90 GB/s", presets::multiGpuFlat(4, 90.0)},
        {"4-GPU xbar 360 GB/s", presets::multiGpuFlat(4, 360.0)},
        {"hierarchical 4x4", presets::multiGpu4x4()},
    };

    std::vector<core::SweepCell> cells;
    for (const auto &s : shapes) {
        core::SweepCell c;
        c.workload = name;
        c.policy = Policy::Ladm;
        c.cfg = s.cfg;
        cells.push_back(c);
    }
    const std::vector<RunMetrics> results = core::runSweep(cells, jobs);

    std::printf("%s under LADM across machine shapes\n\n", name.c_str());
    std::printf("%-22s %12s %9s %10s %12s\n", "machine", "cycles",
                "vs mono", "off-chip", "inter-GPU MB");

    Cycles mono = 0;
    for (size_t i = 0; i < shapes.size(); ++i) {
        const Shape &s = shapes[i];
        const RunMetrics &m = results[i];
        if (mono == 0)
            mono = m.cycles;
        std::printf("%-22s %12llu %8.2fx %9.1f%% %12.1f\n", s.label,
                    static_cast<unsigned long long>(m.cycles),
                    static_cast<double>(mono) / m.cycles, m.offChipPct,
                    m.interGpuBytes / 1e6);
        // Per-node local/remote balance shows *where* the NUMA penalty
        // lands on each machine shape, not just how big it is.
        std::printf("%-22s  local ", "");
        for (const uint64_t v : m.nodeFetchLocal)
            std::printf(" %7llu", static_cast<unsigned long long>(v));
        std::printf("\n%-22s  remote", "");
        for (const uint64_t v : m.nodeFetchRemote)
            std::printf(" %7llu", static_cast<unsigned long long>(v));
        std::printf("\n");
    }

    std::printf("\n(pass a Table IV workload name to explore another "
                "one, e.g. %s PageRank)\n", argv[0]);
    telemetry::session().finalize();
    return 0;
}

int
main(int argc, char **argv)
{
    // --check arms the invariant suite; runMain renders a SimError as a
    // structured report instead of an unhandled-exception backtrace.
    ladm::check::parseArgs(argc, argv);
    ladm::snapshot::parseArgs(argc, argv);
    return ladm::snapshot::runMain([&] { return runExample(argc, argv); });
}
