/**
 * @file
 * Quickstart: simulate one workload (the Fig. 6 tiled GEMM) on the
 * paper's 4-GPU x 4-chiplet machine under three management policies and
 * report what LADM buys you.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * Telemetry: every sink flag from telemetry (see docs/observability.md)
 * works here, e.g.
 *   ./build/examples/quickstart --stats-json stats.json --trace-out t.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "check/invariants.hh"
#include "snapshot/snapshot.hh"
#include "config/presets.hh"
#include "core/experiment.hh"
#include "telemetry/session.hh"
#include "workloads/registry.hh"

using namespace ladm;

int
runExample(int argc, char **argv)
{
    telemetry::session().configure(
        TelemetryOptions::parseArgs(argc, argv));
    // The machine: 4 discrete GPUs x 4 chiplets, 256 SMs (Table III).
    SystemConfig multi = presets::multiGpu4x4();
    // --shards N: run the NUMA machine on the sharded PDES engine
    // (0 = resolve from LADM_SHARDS; 1 = serial reference).
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--shards") == 0) {
            multi.shards = std::atoi(argv[i + 1]);
            break;
        }
    }
    // The yardstick: a hypothetical monolithic 256-SM GPU.
    const SystemConfig mono = presets::monolithic256();

    auto workload = workloads::makeWorkload("SQ-GEMM");

    std::printf("workload: %s (%lld threadblocks)\n",
                workload->name().c_str(),
                static_cast<long long>(workload->dims().numTbs()));

    const RunMetrics mono_m = runExperiment(*workload, Policy::KernelWide,
                                            mono);
    std::printf("\n%-14s %14s %10s %9s %8s\n", "policy", "cycles",
                "vs mono", "off-chip", "L2 hit");

    auto report = [&](Policy p) {
        const RunMetrics m = runExperiment(*workload, p, multi);
        // "vs mono" = cycles_mono / cycles_policy: 1.0 means the NUMA
        // machine matches the idealized monolithic GPU.
        std::printf("%-14s %14llu %9.2fx %8.1f%% %7.1f%%\n",
                    m.policy.c_str(),
                    static_cast<unsigned long long>(m.cycles),
                    m.speedupOver(mono_m), m.offChipPct,
                    m.l2HitRate * 100.0);
        return m;
    };

    const RunMetrics coda = report(Policy::Coda);
    const RunMetrics ladm = report(Policy::Ladm);
    std::printf("%-14s %14llu %9.2fx %8.1f%% %7.1f%%\n", "monolithic",
                static_cast<unsigned long long>(mono_m.cycles), 1.0, 0.0,
                mono_m.l2HitRate * 100.0);

    std::printf("\nLADM vs H-CODA: %.2fx faster, %.1fx less off-chip "
                "traffic\n",
                static_cast<double>(coda.cycles) / ladm.cycles,
                ladm.fetchRemote
                    ? static_cast<double>(coda.fetchRemote) /
                          ladm.fetchRemote
                    : 0.0);

    // Where the LADM run's traffic went, node by node (from the
    // telemetry registry that every component publishes into).
    std::printf("\nper-node traffic under LADM (local / remote "
                "fetches):\n");
    for (size_t n = 0; n < ladm.nodeFetchLocal.size(); ++n) {
        std::printf("  node%-2zu %10llu / %-10llu\n", n,
                    static_cast<unsigned long long>(
                        ladm.nodeFetchLocal[n]),
                    static_cast<unsigned long long>(
                        ladm.nodeFetchRemote[n]));
    }

    telemetry::session().finalize();
    return 0;
}

int
main(int argc, char **argv)
{
    // --check arms the invariant suite; runMain renders a SimError as a
    // structured report instead of an unhandled-exception backtrace.
    ladm::check::parseArgs(argc, argv);
    ladm::snapshot::parseArgs(argc, argv);
    return ladm::snapshot::runMain([&] { return runExample(argc, argv); });
}
