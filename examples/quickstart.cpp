/**
 * @file
 * Quickstart: simulate one workload (the Fig. 6 tiled GEMM) on the
 * paper's 4-GPU x 4-chiplet machine under three management policies and
 * report what LADM buys you.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "config/presets.hh"
#include "core/experiment.hh"
#include "workloads/registry.hh"

using namespace ladm;

int
main()
{
    // The machine: 4 discrete GPUs x 4 chiplets, 256 SMs (Table III).
    const SystemConfig multi = presets::multiGpu4x4();
    // The yardstick: a hypothetical monolithic 256-SM GPU.
    const SystemConfig mono = presets::monolithic256();

    auto workload = workloads::makeWorkload("SQ-GEMM");

    std::printf("workload: %s (%lld threadblocks)\n",
                workload->name().c_str(),
                static_cast<long long>(workload->dims().numTbs()));

    const RunMetrics mono_m = runExperiment(*workload, Policy::KernelWide,
                                            mono);
    std::printf("\n%-14s %14s %10s %9s %8s\n", "policy", "cycles",
                "vs mono", "off-chip", "L2 hit");

    auto report = [&](Policy p) {
        const RunMetrics m = runExperiment(*workload, p, multi);
        // "vs mono" = cycles_mono / cycles_policy: 1.0 means the NUMA
        // machine matches the idealized monolithic GPU.
        std::printf("%-14s %14llu %9.2fx %8.1f%% %7.1f%%\n",
                    m.policy.c_str(),
                    static_cast<unsigned long long>(m.cycles),
                    m.speedupOver(mono_m), m.offChipPct,
                    m.l2HitRate * 100.0);
        return m;
    };

    const RunMetrics coda = report(Policy::Coda);
    const RunMetrics ladm = report(Policy::Ladm);
    std::printf("%-14s %14llu %9.2fx %8.1f%% %7.1f%%\n", "monolithic",
                static_cast<unsigned long long>(mono_m.cycles), 1.0, 0.0,
                mono_m.l2HitRate * 100.0);

    std::printf("\nLADM vs H-CODA: %.2fx faster, %.1fx less off-chip "
                "traffic\n",
                static_cast<double>(coda.cycles) / ladm.cycles,
                ladm.fetchRemote
                    ? static_cast<double>(coda.fetchRemote) /
                          ladm.fetchRemote
                    : 0.0);
    return 0;
}
