/**
 * @file
 * Hand-tuned placement, the way Section IV-C did it on a real DGX-1:
 * the programmer calls the placement mechanisms directly (the simulated
 * cudaMemAdvise equivalent) and pins threadblock rows to GPUs, then
 * compares against what LADM derives automatically -- the "Locality
 * Descriptor"-style APIs of Table I, expressed through this library.
 */

#include <cstdio>

#include "check/invariants.hh"
#include "snapshot/snapshot.hh"
#include "config/presets.hh"
#include "core/experiment.hh"
#include "mem/placement.hh"
#include "sched/binding.hh"
#include "sim/gpu_system.hh"
#include "workloads/registry.hh"

using namespace ladm;

namespace
{

/** A hand-written policy: the programmer knows GEMM's sharing and spells
 *  it out with explicit mechanism calls. */
class HandTunedGemm : public PolicyBundle
{
  public:
    std::string name() const override { return "hand-tuned"; }

    LaunchPlan
    prepare(const KernelDesc &kernel, const LaunchDims &dims,
            const std::vector<uint64_t> &arg_pcs,
            const MallocRegistry &reg, PageTable &pt,
            const SystemConfig &sys) override
    {
        LaunchPlan plan;
        const auto nodes = allNodes(sys.numNodes());
        const Allocation &a = reg.byPc(arg_pcs[0]);
        const Allocation &b = reg.byPc(arg_pcs[1]);
        const Allocation &c = reg.byPc(arg_pcs[2]);

        // "cudaMemAdvise(A, rows-by-node)": whole row strips per node.
        const Bytes row_strip = a.size / sys.numNodes();
        placeContiguousChunks(pt, a.base, a.size, nodes, row_strip);
        // B is column-shared: interleave at Eq. 1's granule.
        placeInterleaved(
            pt, b.base, b.size, nodes,
            strideInterleaveGranule(b.size / dims.grid.y,
                                    sys.numNodes(), pt.pageSize()));
        // C with its writers.
        placeContiguousChunks(pt, c.base, c.size, nodes, 0);

        plan.scheduler = std::make_shared<RowBindingScheduler>();
        plan.schedulerReason = "hand annotation: bind grid rows";
        plan.notes = {"A: hand row strips", "B: hand column interleave",
                      "C: hand chunks"};
        return plan;
    }
};

} // namespace

int
runExample()
{
    const SystemConfig multi = presets::multiGpu4x4();

    std::printf("tiled GEMM: hand-tuned APIs vs automatic LADM\n\n");
    std::printf("%-12s %12s %10s %9s\n", "policy", "cycles", "off-chip",
                "L2 hit");

    HandTunedGemm hand;
    auto w1 = workloads::makeWorkload("SQ-GEMM");
    const RunMetrics manual = runExperiment(*w1, hand, multi);
    std::printf("%-12s %12llu %9.1f%% %8.1f%%\n", manual.policy.c_str(),
                static_cast<unsigned long long>(manual.cycles),
                manual.offChipPct, manual.l2HitRate * 100.0);

    auto w2 = workloads::makeWorkload("SQ-GEMM");
    const RunMetrics autom = runExperiment(*w2, Policy::Ladm, multi);
    std::printf("%-12s %12llu %9.1f%% %8.1f%%\n", autom.policy.c_str(),
                static_cast<unsigned long long>(autom.cycles),
                autom.offChipPct, autom.l2HitRate * 100.0);

    const double vs_hand =
        static_cast<double>(manual.cycles) / autom.cycles;
    if (vs_hand >= 1.0) {
        std::printf("\nLADM's pitch (Table I): the transparency of "
                    "automatic analysis with the\nlocality quality of "
                    "hand annotations -- here %.0f%% ahead of hand "
                    "tuning\nwith zero programmer effort.\n",
                    100.0 * (vs_hand - 1.0));
    } else {
        std::printf("\nLADM's pitch (Table I): the transparency of "
                    "automatic analysis with the\nlocality quality of "
                    "hand annotations -- here within %.0f%% of hand "
                    "tuning\nwith zero programmer effort.\n",
                    100.0 * (1.0 / vs_hand - 1.0));
    }
    return 0;
}

int
main(int argc, char **argv)
{
    // --check arms the invariant suite; runMain renders a SimError as a
    // structured report instead of an unhandled-exception backtrace.
    ladm::check::parseArgs(argc, argv);
    ladm::snapshot::parseArgs(argc, argv);
    return ladm::snapshot::runMain([&] { return runExample(); });
}
