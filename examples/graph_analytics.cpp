/**
 * @file
 * Graph analytics on a NUMA GPU: why intra-thread-locality workloads
 * want cache-remote-once. Runs PageRank over a synthetic scale-free
 * graph under every policy and prints the L2 traffic-class picture that
 * motivates CRB (Fig. 8 / Fig. 11 of the paper).
 */

#include <cstdio>

#include "check/invariants.hh"
#include "snapshot/snapshot.hh"
#include "config/presets.hh"
#include "core/experiment.hh"
#include "workloads/registry.hh"

using namespace ladm;

int
runExample()
{
    const SystemConfig multi = presets::multiGpu4x4();

    auto report = [&](Policy p) {
        auto w = workloads::makeWorkload("PageRank");
        const RunMetrics m = runExperiment(*w, p, multi);
        std::printf("%-12s %10llu cycles  off-chip %5.1f%%  L2 %4.1f%%  "
                    "policy %s\n",
                    m.policy.c_str(),
                    static_cast<unsigned long long>(m.cycles),
                    m.offChipPct, m.l2HitRate * 100.0,
                    toString(m.insertPolicy));
        return m;
    };

    std::printf("PageRank, scale-free graph, 4 GPUs x 4 chiplets\n\n");
    report(Policy::BaselineRr);
    report(Policy::BatchFt);
    report(Policy::KernelWide);
    report(Policy::Coda);
    const RunMetrics rt = report(Policy::LaspRtwice);
    const RunMetrics crb = report(Policy::Ladm);

    std::printf("\nL2 traffic classes (LASP placement):\n");
    std::printf("%-14s %12s %12s %10s %10s\n", "class", "RTWICE acc",
                "CRB acc", "RT hit", "CRB hit");
    for (int c = 0; c < kNumTrafficClasses; ++c) {
        std::printf("%-14s %12llu %12llu %9.1f%% %9.1f%%\n",
                    toString(static_cast<TrafficClass>(c)),
                    static_cast<unsigned long long>(rt.classAccesses[c]),
                    static_cast<unsigned long long>(crb.classAccesses[c]),
                    100.0 * rt.classHitRate[c],
                    100.0 * crb.classHitRate[c]);
    }

    std::printf("\nCRB selected %s for this ITL kernel: the graph's "
                "edge lists are walked once\nper vertex, so home-side "
                "copies of remote data only displace useful lines.\n",
                toString(crb.insertPolicy));
    return 0;
}

int
main(int argc, char **argv)
{
    // --check arms the invariant suite; runMain renders a SimError as a
    // structured report instead of an unhandled-exception backtrace.
    ladm::check::parseArgs(argc, argv);
    ladm::snapshot::parseArgs(argc, argv);
    return ladm::snapshot::runMain([&] { return runExample(); });
}
