/**
 * @file
 * Bring your own kernel: describe a CUDA kernel's global accesses with
 * the symbolic index DSL, run the LADM compiler pass over it, and see
 * the locality table plus the runtime's placement/scheduling plan.
 *
 * The kernel here is a batched matrix-vector multiply
 *   y[row] += A[row * K + m] * x[m]
 * with one thread per output row, blocked 1-D -- an intra-thread-
 * locality kernel the analysis must send down Table II row 6.
 */

#include <cstdio>

#include "check/invariants.hh"
#include "snapshot/snapshot.hh"
#include "config/presets.hh"
#include "runtime/ladm_runtime.hh"

using namespace ladm;
using namespace ladm::dsl;

int
runExample()
{
    // 1. Describe the kernel: one access expression per global load or
    //    store, in prime components (Fig. 6 of the paper).
    const int64_t rows = 65536;
    const int64_t k_dim = 256;

    KernelDesc kernel;
    kernel.name = "gemv";
    kernel.numArgs = 3;
    const Expr row = bx * bdx + tx;
    kernel.accesses.push_back(
        {0, row * k_dim + m, 4, false, AccessFreq::Auto,
         "A[row*K+m]"});                                   // ITL walk
    kernel.accesses.push_back(
        {1, Expr(m), 4, false, AccessFreq::Auto, "x[m]"}); // broadcast
    kernel.accesses.push_back(
        {2, row, 4, true, AccessFreq::Once, "y[row]"});    // result

    // 2. "Compile": the static index analysis fills the locality table.
    const SystemConfig sys = presets::multiGpu4x4();
    LadmRuntime runtime(sys);
    runtime.compile(kernel);

    std::printf("locality table after compilation:\n");
    for (const auto &r : runtime.table().rows()) {
        std::printf("  arg%d %-12s row %d  stride=%s  (%s)\n", r.arg,
                    toString(r.cls.type), tableRow(r.cls.type),
                    r.cls.strideExpr.toString().c_str(), r.note.c_str());
    }

    // 3. Allocate "managed" memory and launch: the runtime binds the
    //    MallocPCs, places every structure, and picks the scheduler and
    //    cache policy.
    MallocRegistry reg(sys.pageSize);
    reg.mallocManaged(0x400, rows * k_dim * 4, "A");
    reg.mallocManaged(0x404, k_dim * 4, "x");
    reg.mallocManaged(0x408, rows * 4, "y");

    LaunchDims dims;
    dims.grid = {rows / 256, 1};
    dims.block = {256, 1};
    dims.loopTrips = k_dim;

    PageTable pt(sys.pageSize);
    const LaunchPlan plan = runtime.prepareLaunch(
        kernel, dims, {0x400, 0x404, 0x408}, reg, pt);

    std::printf("\nlaunch plan:\n  scheduler: %s (%s)\n  L2 policy: %s\n",
                plan.scheduler->name().c_str(),
                plan.schedulerReason.c_str(), toString(plan.policy));
    for (const auto &note : plan.notes)
        std::printf("  placement: %s\n", note.c_str());

    // 4. Inspect the resulting page mapping: the matrix is chunked
    //    kernel-wide so each node owns its threads' rows.
    std::printf("\nA's home nodes at 16 sample offsets:");
    const Allocation &a = reg.byPc(0x400);
    for (int i = 0; i < 16; ++i) {
        const Addr addr = a.base + a.size / 16 * i;
        std::printf(" %d", pt.lookup(addr));
    }
    std::printf("\n");
    return 0;
}

int
main(int argc, char **argv)
{
    // --check arms the invariant suite; runMain renders a SimError as a
    // structured report instead of an unhandled-exception backtrace.
    ladm::check::parseArgs(argc, argv);
    ladm::snapshot::parseArgs(argc, argv);
    return ladm::snapshot::runMain([&] { return runExample(); });
}
