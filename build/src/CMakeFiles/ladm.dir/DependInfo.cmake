
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/ladm.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/ladm.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/insertion_policy.cc" "src/CMakeFiles/ladm.dir/cache/insertion_policy.cc.o" "gcc" "src/CMakeFiles/ladm.dir/cache/insertion_policy.cc.o.d"
  "/root/repo/src/cache/traffic_class.cc" "src/CMakeFiles/ladm.dir/cache/traffic_class.cc.o" "gcc" "src/CMakeFiles/ladm.dir/cache/traffic_class.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/ladm.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/ladm.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/ladm.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/ladm.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/ladm.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/ladm.dir/common/stats.cc.o.d"
  "/root/repo/src/compiler/index_analysis.cc" "src/CMakeFiles/ladm.dir/compiler/index_analysis.cc.o" "gcc" "src/CMakeFiles/ladm.dir/compiler/index_analysis.cc.o.d"
  "/root/repo/src/compiler/locality_table.cc" "src/CMakeFiles/ladm.dir/compiler/locality_table.cc.o" "gcc" "src/CMakeFiles/ladm.dir/compiler/locality_table.cc.o.d"
  "/root/repo/src/compiler/parser.cc" "src/CMakeFiles/ladm.dir/compiler/parser.cc.o" "gcc" "src/CMakeFiles/ladm.dir/compiler/parser.cc.o.d"
  "/root/repo/src/config/presets.cc" "src/CMakeFiles/ladm.dir/config/presets.cc.o" "gcc" "src/CMakeFiles/ladm.dir/config/presets.cc.o.d"
  "/root/repo/src/config/system_config.cc" "src/CMakeFiles/ladm.dir/config/system_config.cc.o" "gcc" "src/CMakeFiles/ladm.dir/config/system_config.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/ladm.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/ladm.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/ladm.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/ladm.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/policy_bundle.cc" "src/CMakeFiles/ladm.dir/core/policy_bundle.cc.o" "gcc" "src/CMakeFiles/ladm.dir/core/policy_bundle.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/ladm.dir/core/report.cc.o" "gcc" "src/CMakeFiles/ladm.dir/core/report.cc.o.d"
  "/root/repo/src/interconnect/crossbar.cc" "src/CMakeFiles/ladm.dir/interconnect/crossbar.cc.o" "gcc" "src/CMakeFiles/ladm.dir/interconnect/crossbar.cc.o.d"
  "/root/repo/src/interconnect/hierarchical.cc" "src/CMakeFiles/ladm.dir/interconnect/hierarchical.cc.o" "gcc" "src/CMakeFiles/ladm.dir/interconnect/hierarchical.cc.o.d"
  "/root/repo/src/interconnect/network.cc" "src/CMakeFiles/ladm.dir/interconnect/network.cc.o" "gcc" "src/CMakeFiles/ladm.dir/interconnect/network.cc.o.d"
  "/root/repo/src/interconnect/ring.cc" "src/CMakeFiles/ladm.dir/interconnect/ring.cc.o" "gcc" "src/CMakeFiles/ladm.dir/interconnect/ring.cc.o.d"
  "/root/repo/src/kernel/datablock.cc" "src/CMakeFiles/ladm.dir/kernel/datablock.cc.o" "gcc" "src/CMakeFiles/ladm.dir/kernel/datablock.cc.o.d"
  "/root/repo/src/kernel/expr.cc" "src/CMakeFiles/ladm.dir/kernel/expr.cc.o" "gcc" "src/CMakeFiles/ladm.dir/kernel/expr.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/CMakeFiles/ladm.dir/mem/page_table.cc.o" "gcc" "src/CMakeFiles/ladm.dir/mem/page_table.cc.o.d"
  "/root/repo/src/mem/placement.cc" "src/CMakeFiles/ladm.dir/mem/placement.cc.o" "gcc" "src/CMakeFiles/ladm.dir/mem/placement.cc.o.d"
  "/root/repo/src/runtime/ladm_runtime.cc" "src/CMakeFiles/ladm.dir/runtime/ladm_runtime.cc.o" "gcc" "src/CMakeFiles/ladm.dir/runtime/ladm_runtime.cc.o.d"
  "/root/repo/src/runtime/lasp_placement.cc" "src/CMakeFiles/ladm.dir/runtime/lasp_placement.cc.o" "gcc" "src/CMakeFiles/ladm.dir/runtime/lasp_placement.cc.o.d"
  "/root/repo/src/runtime/malloc_registry.cc" "src/CMakeFiles/ladm.dir/runtime/malloc_registry.cc.o" "gcc" "src/CMakeFiles/ladm.dir/runtime/malloc_registry.cc.o.d"
  "/root/repo/src/sched/baseline_rr.cc" "src/CMakeFiles/ladm.dir/sched/baseline_rr.cc.o" "gcc" "src/CMakeFiles/ladm.dir/sched/baseline_rr.cc.o.d"
  "/root/repo/src/sched/batched_rr.cc" "src/CMakeFiles/ladm.dir/sched/batched_rr.cc.o" "gcc" "src/CMakeFiles/ladm.dir/sched/batched_rr.cc.o.d"
  "/root/repo/src/sched/binding.cc" "src/CMakeFiles/ladm.dir/sched/binding.cc.o" "gcc" "src/CMakeFiles/ladm.dir/sched/binding.cc.o.d"
  "/root/repo/src/sched/kernel_wide.cc" "src/CMakeFiles/ladm.dir/sched/kernel_wide.cc.o" "gcc" "src/CMakeFiles/ladm.dir/sched/kernel_wide.cc.o.d"
  "/root/repo/src/sim/kernel_engine.cc" "src/CMakeFiles/ladm.dir/sim/kernel_engine.cc.o" "gcc" "src/CMakeFiles/ladm.dir/sim/kernel_engine.cc.o.d"
  "/root/repo/src/sim/memory_system.cc" "src/CMakeFiles/ladm.dir/sim/memory_system.cc.o" "gcc" "src/CMakeFiles/ladm.dir/sim/memory_system.cc.o.d"
  "/root/repo/src/workloads/access_gen.cc" "src/CMakeFiles/ladm.dir/workloads/access_gen.cc.o" "gcc" "src/CMakeFiles/ladm.dir/workloads/access_gen.cc.o.d"
  "/root/repo/src/workloads/gemm_workloads.cc" "src/CMakeFiles/ladm.dir/workloads/gemm_workloads.cc.o" "gcc" "src/CMakeFiles/ladm.dir/workloads/gemm_workloads.cc.o.d"
  "/root/repo/src/workloads/graph_gen.cc" "src/CMakeFiles/ladm.dir/workloads/graph_gen.cc.o" "gcc" "src/CMakeFiles/ladm.dir/workloads/graph_gen.cc.o.d"
  "/root/repo/src/workloads/irregular_workloads.cc" "src/CMakeFiles/ladm.dir/workloads/irregular_workloads.cc.o" "gcc" "src/CMakeFiles/ladm.dir/workloads/irregular_workloads.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/ladm.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/ladm.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/regular_workloads.cc" "src/CMakeFiles/ladm.dir/workloads/regular_workloads.cc.o" "gcc" "src/CMakeFiles/ladm.dir/workloads/regular_workloads.cc.o.d"
  "/root/repo/src/workloads/stencil_workloads.cc" "src/CMakeFiles/ladm.dir/workloads/stencil_workloads.cc.o" "gcc" "src/CMakeFiles/ladm.dir/workloads/stencil_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
