# Empty compiler generated dependencies file for ladm.
# This may be replaced when dependencies are built.
