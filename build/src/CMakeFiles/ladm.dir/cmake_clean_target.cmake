file(REMOVE_RECURSE
  "libladm.a"
)
