file(REMOVE_RECURSE
  "CMakeFiles/bench_table04_workloads.dir/bench_table04_workloads.cc.o"
  "CMakeFiles/bench_table04_workloads.dir/bench_table04_workloads.cc.o.d"
  "bench_table04_workloads"
  "bench_table04_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
