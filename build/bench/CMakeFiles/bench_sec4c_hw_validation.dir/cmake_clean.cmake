file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4c_hw_validation.dir/bench_sec4c_hw_validation.cc.o"
  "CMakeFiles/bench_sec4c_hw_validation.dir/bench_sec4c_hw_validation.cc.o.d"
  "bench_sec4c_hw_validation"
  "bench_sec4c_hw_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4c_hw_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
