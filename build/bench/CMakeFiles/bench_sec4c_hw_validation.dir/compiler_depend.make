# Empty compiler generated dependencies file for bench_sec4c_hw_validation.
# This may be replaced when dependencies are built.
