# Empty dependencies file for bench_table01_capability_matrix.
# This may be replaced when dependencies are built.
