# Empty dependencies file for bench_fig11_ronce_case_study.
# This may be replaced when dependencies are built.
