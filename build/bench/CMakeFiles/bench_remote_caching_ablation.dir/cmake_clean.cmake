file(REMOVE_RECURSE
  "CMakeFiles/bench_remote_caching_ablation.dir/bench_remote_caching_ablation.cc.o"
  "CMakeFiles/bench_remote_caching_ablation.dir/bench_remote_caching_ablation.cc.o.d"
  "bench_remote_caching_ablation"
  "bench_remote_caching_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_remote_caching_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
