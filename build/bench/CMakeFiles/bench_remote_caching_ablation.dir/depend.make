# Empty dependencies file for bench_remote_caching_ablation.
# This may be replaced when dependencies are built.
