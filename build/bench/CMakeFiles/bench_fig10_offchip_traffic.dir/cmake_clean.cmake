file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_offchip_traffic.dir/bench_fig10_offchip_traffic.cc.o"
  "CMakeFiles/bench_fig10_offchip_traffic.dir/bench_fig10_offchip_traffic.cc.o.d"
  "bench_fig10_offchip_traffic"
  "bench_fig10_offchip_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_offchip_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
