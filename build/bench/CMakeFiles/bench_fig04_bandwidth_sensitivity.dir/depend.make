# Empty dependencies file for bench_fig04_bandwidth_sensitivity.
# This may be replaced when dependencies are built.
