# Empty compiler generated dependencies file for bench_table03_machine_config.
# This may be replaced when dependencies are built.
