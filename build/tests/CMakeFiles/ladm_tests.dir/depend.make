# Empty dependencies file for ladm_tests.
# This may be replaced when dependencies are built.
