
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_access_gen.cc" "tests/CMakeFiles/ladm_tests.dir/test_access_gen.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_access_gen.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/ladm_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_classification.cc" "tests/CMakeFiles/ladm_tests.dir/test_classification.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_classification.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/ladm_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_coupling_properties.cc" "tests/CMakeFiles/ladm_tests.dir/test_coupling_properties.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_coupling_properties.cc.o.d"
  "/root/repo/tests/test_datablock.cc" "tests/CMakeFiles/ladm_tests.dir/test_datablock.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_datablock.cc.o.d"
  "/root/repo/tests/test_engine.cc" "tests/CMakeFiles/ladm_tests.dir/test_engine.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_engine.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/ladm_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_expr.cc" "tests/CMakeFiles/ladm_tests.dir/test_expr.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_expr.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/ladm_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_gpu_system.cc" "tests/CMakeFiles/ladm_tests.dir/test_gpu_system.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_gpu_system.cc.o.d"
  "/root/repo/tests/test_interconnect.cc" "tests/CMakeFiles/ladm_tests.dir/test_interconnect.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_interconnect.cc.o.d"
  "/root/repo/tests/test_memory_system.cc" "tests/CMakeFiles/ladm_tests.dir/test_memory_system.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_memory_system.cc.o.d"
  "/root/repo/tests/test_model_validation.cc" "tests/CMakeFiles/ladm_tests.dir/test_model_validation.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_model_validation.cc.o.d"
  "/root/repo/tests/test_page_table.cc" "tests/CMakeFiles/ladm_tests.dir/test_page_table.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_page_table.cc.o.d"
  "/root/repo/tests/test_parser.cc" "tests/CMakeFiles/ladm_tests.dir/test_parser.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_parser.cc.o.d"
  "/root/repo/tests/test_placement.cc" "tests/CMakeFiles/ladm_tests.dir/test_placement.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_placement.cc.o.d"
  "/root/repo/tests/test_policy_bundles.cc" "tests/CMakeFiles/ladm_tests.dir/test_policy_bundles.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_policy_bundles.cc.o.d"
  "/root/repo/tests/test_runtime.cc" "tests/CMakeFiles/ladm_tests.dir/test_runtime.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_runtime.cc.o.d"
  "/root/repo/tests/test_schedulers.cc" "tests/CMakeFiles/ladm_tests.dir/test_schedulers.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_schedulers.cc.o.d"
  "/root/repo/tests/test_table4_fidelity.cc" "tests/CMakeFiles/ladm_tests.dir/test_table4_fidelity.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_table4_fidelity.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/ladm_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/ladm_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ladm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
