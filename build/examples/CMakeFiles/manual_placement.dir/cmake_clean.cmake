file(REMOVE_RECURSE
  "CMakeFiles/manual_placement.dir/manual_placement.cpp.o"
  "CMakeFiles/manual_placement.dir/manual_placement.cpp.o.d"
  "manual_placement"
  "manual_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manual_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
