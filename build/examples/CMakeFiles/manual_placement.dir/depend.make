# Empty dependencies file for manual_placement.
# This may be replaced when dependencies are built.
