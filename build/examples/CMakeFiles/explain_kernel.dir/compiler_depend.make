# Empty compiler generated dependencies file for explain_kernel.
# This may be replaced when dependencies are built.
