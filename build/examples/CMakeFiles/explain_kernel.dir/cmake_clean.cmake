file(REMOVE_RECURSE
  "CMakeFiles/explain_kernel.dir/explain_kernel.cpp.o"
  "CMakeFiles/explain_kernel.dir/explain_kernel.cpp.o.d"
  "explain_kernel"
  "explain_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
